"""Parity and contracts of ``annotate_tables(workers=N)``.

The process-pool execution layer (:mod:`repro.core.parallel`) must be a
pure throughput optimisation: distributing a corpus across workers may
change *where* the work happens, never what comes back.  This suite pins:

* annotations byte-identical to the sequential run (healthy engine and
  fully-down engine alike), with the original corpus table order, under
  both the static and the work-stealing scheduler;
* skewed corpora (one giant table + many small ones) and duplicate table
  names split across tasks -- the merge reassembly must match the
  sequential run cell for cell;
* corpus-wide diagnostics aggregated across every task, with per-worker
  load accounting that sums back to the corpus totals;
* the shared cache directory data flow: workers warm-start from it,
  merge-save back, and the parent ends up warm too;
* argument validation, shard assignment, and deterministic cost-bounded
  chunking (including the empty-corpus and zero-worker edge cases).
"""

import random

import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.core.parallel import (
    TableSlice,
    annotate_tables_parallel,
    automatic_chunk_cost,
    chunk_tables,
    shard_tables,
    slice_table,
    table_cost,
)
from repro.core.results import RunDiagnostics, WorkerLoad
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = [f"Venue {i}" for i in range(24)]
_TYPE_KEYS = ["museum", "restaurant"]


def _make_engine() -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock())
    rng = random.Random(0)
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
            )
            for name in _NAMES
            for i in range(4)
        ]
    )
    return engine


def _train(seed=1) -> SnippetTypeClassifier:
    rng = random.Random(seed)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_WORDS, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    return _train()


def _corpus(n_tables=8, rows_per_table=3) -> list[Table]:
    """Distinct-content corpus: every table names its own venues."""
    tables = []
    for index in range(n_tables):
        table = Table(
            name=f"t{index}", columns=[Column("Name", ColumnType.TEXT)]
        )
        for row in range(rows_per_table):
            table.append_row([_NAMES[(index * rows_per_table + row) % len(_NAMES)]])
        tables.append(table)
    return tables


class TestParallelParity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_byte_identical_to_sequential(self, classifier, workers):
        tables = _corpus()
        sequential = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        parallel = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=workers)
        assert parallel == sequential
        # Byte-identical, not merely equal: same tables in the same order
        # with value-identical cells (repr covers every field).
        assert repr(sorted(parallel.tables.items())) == repr(
            sorted(sequential.tables.items())
        )
        assert list(parallel.tables) == [table.name for table in tables]

    def test_more_workers_than_tables_clamps(self, classifier):
        tables = _corpus(n_tables=2)
        run = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=16)
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        assert run == reference

    def test_single_table_corpus_stays_sequential(self, classifier):
        # One table cannot shard; workers>1 must degrade gracefully.
        tables = _corpus(n_tables=1)
        run = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=4)
        assert set(run.tables) == {"t0"}

    def test_engine_down_everywhere_matches_sequential(self, classifier):
        tables = _corpus()
        down_a = _make_engine()
        down_a.available = False
        sequential = EntityAnnotator(
            classifier, down_a, AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        down_b = _make_engine()
        down_b.available = False
        parallel = EntityAnnotator(
            classifier, down_b, AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert parallel == sequential
        assert (
            parallel.diagnostics.search_failures
            == sequential.diagnostics.search_failures
            > 0
        )

    def test_workers_must_be_positive(self, classifier):
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        with pytest.raises(ValueError, match="workers"):
            annotator.annotate_tables(_corpus(), _TYPE_KEYS, workers=0)


class TestParallelDiagnostics:
    def test_diagnostics_aggregate_across_workers(self, classifier):
        tables = _corpus()
        sequential = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        parallel = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert parallel.diagnostics.n_tables == sequential.diagnostics.n_tables
        assert parallel.diagnostics.n_cells == sequential.diagnostics.n_cells
        # Distinct-content corpus: no query spans two shards, so even the
        # issued-query accounting matches the sequential run exactly.
        assert (
            parallel.diagnostics.queries_issued
            == sequential.diagnostics.queries_issued
        )
        assert (
            parallel.diagnostics.clock_charges
            == sequential.diagnostics.clock_charges
        )

    def test_combined_sums_every_counter(self):
        parts = [
            RunDiagnostics(
                n_tables=1,
                n_cells=2,
                search_failures=1,
                cache_hits=3,
                cache_misses=4,
                queries_issued=5,
                clock_charges=6,
                virtual_seconds=1.5,
            ),
            RunDiagnostics(
                n_tables=2,
                n_cells=3,
                search_failures=0,
                cache_hits=1,
                cache_misses=1,
                queries_issued=2,
                clock_charges=2,
                virtual_seconds=0.5,
            ),
        ]
        combined = RunDiagnostics.combined(parts)
        assert combined == RunDiagnostics(
            n_tables=3,
            n_cells=5,
            search_failures=1,
            cache_hits=4,
            cache_misses=5,
            queries_issued=7,
            clock_charges=8,
            virtual_seconds=2.0,
        )


class TestSharedCacheDirectory:
    def test_workers_populate_and_parent_warms(self, classifier, tmp_path):
        tables = _corpus()
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        run = annotator.annotate_tables(
            tables, _TYPE_KEYS, workers=2, cache_dir=tmp_path
        )
        assert run.tables
        # The workers merge-saved their shard caches; a fresh "process"
        # over the same corpus and classifier starts warm.
        fresh = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        assert fresh.load_caches(tmp_path) == {
            "search_results": True,
            "label_memo": True,
        }
        # Every shard's entries made it in (merge, not clobber): the
        # merged signature cache answers every table's queries.
        assert fresh.cell_annotator._label_memo
        warm = fresh.annotate_tables(tables, _TYPE_KEYS)
        assert warm == run
        # The parent itself reloaded the merged caches after the pool.
        assert annotator.engine._results_cache

    def test_sequential_run_honours_cache_dir_too(self, classifier, tmp_path):
        tables = _corpus(n_tables=3)
        first = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        first.annotate_tables(tables, _TYPE_KEYS, workers=1, cache_dir=tmp_path)
        second = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        loaded = second.load_caches(tmp_path)
        assert loaded == {"search_results": True, "label_memo": True}


class TestShardAssignment:
    def test_shards_partition_in_order(self):
        tables = _corpus(n_tables=7)
        shards = shard_tables(tables, 3)
        assert len(shards) == 3
        flattened = [table for shard in shards for table in shard]
        assert [t.name for t in flattened] == [t.name for t in tables]
        sizes = sorted(len(shard) for shard in shards)
        assert max(sizes) - min(sizes) <= 1

    def test_no_empty_shards(self):
        tables = _corpus(n_tables=2)
        shards = shard_tables(tables, 5)
        assert len(shards) == 2
        assert all(shard for shard in shards)

    def test_empty_corpus_yields_no_shards(self):
        # Regression: this used to divide by zero (min(workers, 0) == 0).
        assert shard_tables([], 4) == []

    @pytest.mark.parametrize("workers", [0, -3])
    def test_non_positive_workers_raise(self, workers):
        # Regression: workers=0 used to divide by zero instead of telling
        # the caller what was wrong.
        with pytest.raises(ValueError, match="workers"):
            shard_tables(_corpus(n_tables=2), workers)


def _skewed_corpus(giant_rows=12, n_small=6, small_rows=2) -> list[Table]:
    """One giant table followed by small distinct-content tables."""
    tables = [
        Table(name="giant", columns=[Column("Name", ColumnType.TEXT)])
    ]
    for row in range(giant_rows):
        tables[0].append_row([_NAMES[row % len(_NAMES)]])
    for index in range(n_small):
        table = Table(
            name=f"small-{index}", columns=[Column("Name", ColumnType.TEXT)]
        )
        for row in range(small_rows):
            table.append_row(
                [_NAMES[(giant_rows + index * small_rows + row) % len(_NAMES)]]
            )
        tables.append(table)
    return tables


class TestChunking:
    def test_chunks_preserve_corpus_order(self):
        tables = _skewed_corpus()
        chunks = chunk_tables(tables, 6)
        flattened = [table for chunk in chunks for table in chunk]
        assert [t.name for t in flattened] == [t.name for t in tables]

    def test_multi_table_chunks_respect_the_budget(self):
        tables = _skewed_corpus()
        target = 6
        for chunk in chunk_tables(tables, target):
            if len(chunk) > 1:
                assert sum(table_cost(t) for t in chunk) <= target

    def test_giant_table_travels_alone(self):
        tables = _skewed_corpus(giant_rows=12, n_small=4, small_rows=2)
        chunks = chunk_tables(tables, 6)
        assert [t.name for t in chunks[0]] == ["giant"]
        assert len(chunks) > 2  # the small tables split into several tasks

    def test_chunking_is_deterministic(self):
        tables = _skewed_corpus()
        first = chunk_tables(tables, 5)
        second = chunk_tables(list(tables), 5)
        assert [[t.name for t in chunk] for chunk in first] == [
            [t.name for t in chunk] for chunk in second
        ]

    def test_empty_corpus_yields_no_chunks(self):
        assert chunk_tables([], 10) == []

    def test_non_positive_target_raises(self):
        with pytest.raises(ValueError, match="chunk_cost_target"):
            chunk_tables(_skewed_corpus(), 0)

    def test_automatic_cost_aims_for_chunks_per_worker(self):
        tables = _corpus(n_tables=8, rows_per_table=4)
        target = automatic_chunk_cost(tables, workers=2)
        assert target >= 1
        total = sum(table_cost(t) for t in tables)
        # ~4 tasks per worker: the per-chunk budget is total / 8.
        assert target == -(-total // 8)

    def test_table_cost_is_the_cell_count(self):
        table = _skewed_corpus()[0]
        assert table_cost(table) == table.n_rows * table.n_columns
        empty = Table(name="e", columns=[Column("Name", ColumnType.TEXT)])
        assert table_cost(empty) == 1  # still occupies a task slot


class TestSlicing:
    def test_slice_boundaries_are_exact(self):
        giant = _skewed_corpus(giant_rows=14)[0]  # 14 rows x 1 column
        slices = slice_table(giant, 0, 4)
        assert [(s.row_start, s.row_stop) for s in slices] == [
            (0, 4),
            (4, 8),
            (8, 12),
            (12, 14),
        ]
        for s in slices:
            assert s.table_name == "giant" and s.table_index == 0
            assert s.table.rows == giant.rows[s.row_start : s.row_stop]
            assert s.table.columns == giant.columns

    def test_slice_target_below_one_raises(self):
        with pytest.raises(ValueError, match="slice_cost_target"):
            slice_table(_skewed_corpus()[0], 0, 0)

    def test_wide_row_floors_at_one_row_per_slice(self):
        wide = Table(
            name="w",
            columns=[Column(f"c{j}") for j in range(5)],
            rows=[[f"v{i}{j}" for j in range(5)] for i in range(3)],
        )
        slices = slice_table(wide, 0, 2)  # every single row exceeds 2
        assert [(s.row_start, s.row_stop) for s in slices] == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]

    def test_chunk_tables_splitting_off_by_default(self):
        tables = _skewed_corpus(giant_rows=14)
        for chunk in chunk_tables(tables, 4):
            assert not any(isinstance(item, TableSlice) for item in chunk)

    def test_split_giant_travels_as_consecutive_single_slice_tasks(self):
        tables = _skewed_corpus(giant_rows=14, n_small=4, small_rows=2)
        chunks = chunk_tables(tables, 4, 4)
        slice_chunks = [
            chunk for chunk in chunks if isinstance(chunk[0], TableSlice)
        ]
        assert len(slice_chunks) == 4
        assert all(len(chunk) == 1 for chunk in slice_chunks)
        assert chunks[:4] == slice_chunks  # corpus order: giant first
        starts = [chunk[0].row_start for chunk in slice_chunks]
        assert starts == sorted(starts)

    def test_one_row_table_never_splits(self):
        one_row = Table(
            name="wide-one",
            columns=[Column(f"c{j}") for j in range(8)],
            rows=[[f"v{j}" for j in range(8)]],
        )
        chunks = chunk_tables([one_row], 1, 1)
        assert chunks == [[one_row]]

    def test_small_tables_still_pack_between_splits(self):
        tables = _skewed_corpus(giant_rows=14, n_small=4, small_rows=2)
        chunks = chunk_tables(tables, 4, 4)
        packed = [chunk for chunk in chunks if len(chunk) > 1]
        assert packed  # smalls (cost 2) still share cost-4 chunks


class TestSplittingParity:
    def _splitting_config(self, **kwargs) -> AnnotatorConfig:
        return AnnotatorConfig(
            schedule="stealing",
            chunk_cost_target=4,
            split_giant_tables=True,
            **kwargs,
        )

    def test_split_run_byte_identical_to_sequential(self, classifier):
        tables = _skewed_corpus(giant_rows=14, n_small=4, small_rows=2)
        sequential = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        split = EntityAnnotator(
            classifier, _make_engine(), self._splitting_config()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert split.diagnostics.tables_split == 1
        assert split == sequential
        assert repr(sorted(split.tables.items())) == repr(
            sorted(sequential.tables.items())
        )
        assert list(split.tables) == [table.name for table in tables]

    def test_max_slice_cost_alone_enables_splitting(self, classifier):
        tables = _skewed_corpus(giant_rows=14, n_small=4, small_rows=2)
        run = EntityAnnotator(
            classifier,
            _make_engine(),
            AnnotatorConfig(schedule="stealing", max_slice_cost=4),
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert run.diagnostics.tables_split == 1
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        assert run == reference

    def test_duplicate_named_giants_do_not_merge_slices(self, classifier):
        """Two *distinct* giant tables share a name and both split: slices
        group by corpus position, so each giant reassembles from its own
        slices and the run merges the two annotations exactly as the
        sequential path does."""

        def giant(start: int) -> Table:
            table = Table(name="g", columns=[Column("Name", ColumnType.TEXT)])
            for row in range(8):
                table.append_row([_NAMES[(start + row) % len(_NAMES)]])
            return table

        tables = [giant(0), giant(8)]
        sequential = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        split = EntityAnnotator(
            classifier, _make_engine(), self._splitting_config()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert split.diagnostics.tables_split == 2
        assert split == sequential
        assert repr(split.tables["g"].cells) == repr(
            sequential.tables["g"].cells
        )

    def test_spatial_disambiguation_gates_splitting_off(self, classifier):
        """Row contexts are table-global, so splitting is force-disabled
        rather than trading byte-parity for balance."""
        from repro.geo.gazetteer import Gazetteer
        from repro.geo.geocoder import Geocoder

        tables = _skewed_corpus(giant_rows=14, n_small=4, small_rows=2)
        run = EntityAnnotator(
            classifier,
            _make_engine(),
            self._splitting_config(use_spatial_disambiguation=True),
            geocoder=Geocoder(Gazetteer()),
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert run.diagnostics.tables_split == 0

    def test_split_diagnostics_account_exactly(self, classifier):
        tables = _skewed_corpus(giant_rows=14, n_small=4, small_rows=2)
        sequential = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        run = EntityAnnotator(
            classifier, _make_engine(), self._splitting_config()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert run.diagnostics.effective_chunk_cost == 4
        assert run.diagnostics.tables_split == 1
        assert run.diagnostics.n_tables == sequential.diagnostics.n_tables
        assert run.diagnostics.n_cells == sequential.diagnostics.n_cells
        loads = run.diagnostics.worker_loads
        # A table's slices may land on different workers, yet each
        # physical table and candidate cell is counted exactly once.
        assert sum(load.n_tables for load in loads) == len(tables)
        assert sum(load.n_cells for load in loads) == run.diagnostics.n_cells
        expected_tasks = len(chunk_tables(tables, 4, 4))
        assert sum(load.n_tasks for load in loads) == expected_tasks

    def test_degraded_cells_reassemble_byte_identically(self, classifier):
        """A failing engine degrades the same cells -- same rows, same
        order -- whether the giant table travelled whole or as slices."""
        def failing_engine() -> SearchEngine:
            engine = _make_engine()
            engine.failure_rate = 0.3
            return engine

        tables = _skewed_corpus(giant_rows=14, n_small=4, small_rows=2)
        sequential = EntityAnnotator(
            classifier, failing_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        assert sequential.degraded_cells()  # the fixture really degrades
        split = EntityAnnotator(
            classifier, failing_engine(), self._splitting_config()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert split.diagnostics.tables_split == 1
        assert split == sequential
        assert repr(split.tables["giant"].degraded) == repr(
            sequential.tables["giant"].degraded
        )


class TestChunkTargetFloor:
    """ISSUE 7 satellite: a chunk target below every table's cost used to
    degenerate to one task per table *silently*.  The effective target is
    now recorded in the run diagnostics and the degeneration is logged."""

    def test_target_one_makes_per_table_tasks_and_warns(
        self, classifier, caplog
    ):
        tables = _corpus(n_tables=4)  # every table costs 3
        with caplog.at_level("WARNING", logger="repro.core.parallel"):
            run = EntityAnnotator(
                classifier,
                _make_engine(),
                AnnotatorConfig(schedule="stealing", chunk_cost_target=1),
            ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert run.diagnostics.effective_chunk_cost == 1
        assert run.diagnostics.tables_split == 0
        loads = run.diagnostics.worker_loads
        assert sum(load.n_tasks for load in loads) == len(tables)
        warnings = [
            record.message
            for record in caplog.records
            if record.levelname == "WARNING"
        ]
        assert any("below every table's cost" in message for message in warnings)
        assert any("split_giant_tables" in message for message in warnings)

    def test_target_one_with_splitting_slices_to_the_one_row_floor(
        self, classifier, caplog
    ):
        tables = _corpus(n_tables=2, rows_per_table=3)
        with caplog.at_level("WARNING", logger="repro.core.parallel"):
            run = EntityAnnotator(
                classifier,
                _make_engine(),
                AnnotatorConfig(
                    schedule="stealing",
                    chunk_cost_target=1,
                    split_giant_tables=True,
                ),
            ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        # Splitting turns the degenerate target into real balance: every
        # table is cut to one-row slices -- and the warning is gone.
        assert run.diagnostics.tables_split == 2
        loads = run.diagnostics.worker_loads
        assert sum(load.n_tasks for load in loads) == 6  # 2 tables x 3 rows
        assert not [
            record for record in caplog.records if record.levelname == "WARNING"
        ]
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        assert run == reference

    def test_automatic_target_is_recorded(self, classifier):
        tables = _corpus(n_tables=8)
        run = EntityAnnotator(
            classifier,
            _make_engine(),
            AnnotatorConfig(schedule="stealing"),  # chunk_cost_target=0
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert run.diagnostics.effective_chunk_cost == automatic_chunk_cost(
            tables, 2
        )

    def test_static_schedule_records_no_chunk_cost(self, classifier):
        run = EntityAnnotator(
            classifier,
            _make_engine(),
            AnnotatorConfig(schedule="static"),
        ).annotate_tables(_corpus(n_tables=4), _TYPE_KEYS, workers=2)
        assert run.diagnostics.effective_chunk_cost == 0

    def test_negative_max_slice_cost_rejected(self):
        with pytest.raises(ValueError, match="max_slice_cost"):
            AnnotatorConfig(max_slice_cost=-1)


class TestWorkStealing:
    @pytest.mark.parametrize("schedule", ["static", "stealing"])
    def test_skewed_corpus_matches_sequential(self, classifier, schedule):
        tables = _skewed_corpus()
        sequential = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        parallel = EntityAnnotator(
            classifier,
            _make_engine(),
            AnnotatorConfig(schedule=schedule, chunk_cost_target=5),
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert parallel == sequential
        assert repr(sorted(parallel.tables.items())) == repr(
            sorted(sequential.tables.items())
        )
        assert list(parallel.tables) == [table.name for table in tables]

    @pytest.mark.parametrize("schedule", ["static", "stealing"])
    def test_duplicate_table_names_merge_like_sequential(
        self, classifier, schedule
    ):
        # Two *distinct* tables share the name "t" and land in different
        # tasks.  Regression: reassembly used to replace the first "t"
        # annotation with the second instead of merging the cells the way
        # the sequential run does.
        def named(name: str, names: list[str]) -> Table:
            table = Table(
                name=name, columns=[Column("Name", ColumnType.TEXT)]
            )
            for value in names:
                table.append_row([value])
            return table

        tables = [
            named("t", [_NAMES[0], _NAMES[1]]),
            named("mid-0", [_NAMES[2]]),
            named("mid-1", [_NAMES[3]]),
            named("t", [_NAMES[4], _NAMES[5]]),
        ]
        sequential = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        parallel = EntityAnnotator(
            classifier,
            _make_engine(),
            AnnotatorConfig(schedule=schedule, chunk_cost_target=1),
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        # Both same-named tables contributed cells, in corpus order.
        assert {cell.cell_value for cell in sequential.tables["t"].cells} > {
            cell.cell_value for cell in sequential.tables["t"].cells[:1]
        }
        assert parallel == sequential
        assert repr(parallel.tables["t"].cells) == repr(
            sequential.tables["t"].cells
        )
        assert list(parallel.tables) == ["t", "mid-0", "mid-1"]

    def test_worker_loads_sum_to_corpus_totals(self, classifier):
        tables = _skewed_corpus()
        annotator = EntityAnnotator(
            classifier,
            _make_engine(),
            AnnotatorConfig(schedule="stealing", chunk_cost_target=5),
        )
        run = annotator.annotate_tables(tables, _TYPE_KEYS, workers=2)
        loads = run.diagnostics.worker_loads
        assert loads
        assert len(loads) <= 2
        assert sum(load.n_tables for load in loads) == len(tables)
        assert sum(load.n_tables for load in loads) == run.diagnostics.n_tables
        assert sum(load.n_cells for load in loads) == run.diagnostics.n_cells
        expected_tasks = len(chunk_tables(tables, 5))
        assert sum(load.n_tasks for load in loads) == expected_tasks
        assert all(load.busy_seconds >= 0.0 for load in loads)
        assert [load.worker_id for load in loads] == list(range(len(loads)))

    def test_chunk_cost_of_one_makes_per_table_tasks(self, classifier):
        tables = _corpus(n_tables=4)
        run = EntityAnnotator(
            classifier,
            _make_engine(),
            AnnotatorConfig(schedule="stealing", chunk_cost_target=1),
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        loads = run.diagnostics.worker_loads
        assert sum(load.n_tasks for load in loads) == len(tables)

    def test_empty_corpus_direct_call_returns_empty_run(self, classifier):
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        run = annotate_tables_parallel(annotator, [], _TYPE_KEYS, workers=3)
        assert run.tables == {}
        assert run.diagnostics.n_tables == 0
        assert run.diagnostics.n_cells == 0
        assert run.diagnostics.worker_loads == ()

    def test_direct_call_rejects_non_positive_workers(self, classifier):
        # The stealing path must validate workers too, not just
        # shard_tables: a direct call with workers=0 used to surface as a
        # cryptic ProcessPoolExecutor error.
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        with pytest.raises(ValueError, match="workers"):
            annotate_tables_parallel(
                annotator, _corpus(n_tables=2), _TYPE_KEYS, workers=0
            )

    def test_worker_task_error_propagates(self, classifier, tmp_path):
        # A failing task must raise the worker's error in the parent (not
        # hang the pool or the flush barrier), even with a cache dir.
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        with pytest.raises(ValueError, match="type_keys"):
            annotate_tables_parallel(
                annotator,
                _corpus(n_tables=4),
                [],
                workers=2,
                cache_dir=tmp_path,
            )

    def test_idle_workers_get_zero_loads(self):
        # One process drained the whole queue: the pool's other worker
        # must appear as a zero load so imbalance_ratio reports 2.0, not
        # a "perfectly balanced" 1.0.
        from repro.core.parallel import _worker_loads
        from repro.core.results import AnnotationRun as Run

        run = Run()
        run.diagnostics = RunDiagnostics(
            n_tables=3,
            n_cells=30,
            search_failures=0,
            cache_hits=0,
            cache_misses=0,
            queries_issued=0,
            clock_charges=0,
            virtual_seconds=0.0,
        )
        loads = _worker_loads(
            [(0, run, 4242, 2.0, (51200, 0.25, 4096))], n_workers=2
        )
        assert len(loads) == 2
        assert loads[0].n_tasks == 1 and loads[0].busy_seconds == 2.0
        assert loads[0].peak_rss_kb == 51200
        assert loads[0].attach_seconds == 0.25
        assert loads[0].attach_rss_kb == 4096
        assert loads[1].n_tasks == 0 and loads[1].busy_seconds == 0.0
        assert loads[1].peak_rss_kb == 0 and loads[1].attach_rss_kb == 0
        diag = RunDiagnostics(
            n_tables=3,
            n_cells=30,
            search_failures=0,
            cache_hits=0,
            cache_misses=0,
            queries_issued=0,
            clock_charges=0,
            virtual_seconds=0.0,
            worker_loads=loads,
        )
        assert diag.imbalance_ratio == pytest.approx(2.0)

    def test_single_table_direct_call_matches_sequential(self, classifier):
        tables = _corpus(n_tables=1)
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        run = annotate_tables_parallel(annotator, tables, _TYPE_KEYS, workers=4)
        assert run == reference

    def test_unknown_schedule_rejected(self, classifier):
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        with pytest.raises(ValueError, match="schedule"):
            annotate_tables_parallel(
                annotator,
                _corpus(n_tables=2),
                _TYPE_KEYS,
                workers=2,
                schedule="round-robin",
            )
        with pytest.raises(ValueError, match="schedule"):
            AnnotatorConfig(schedule="round-robin")

    def test_imbalance_ratio_contract(self):
        def diag(loads):
            return RunDiagnostics(
                n_tables=0,
                n_cells=0,
                search_failures=0,
                cache_hits=0,
                cache_misses=0,
                queries_issued=0,
                clock_charges=0,
                virtual_seconds=0.0,
                worker_loads=tuple(loads),
            )

        assert diag([]).imbalance_ratio == 0.0
        balanced = diag(
            [
                WorkerLoad(0, 2, 4, 40, 1.0),
                WorkerLoad(1, 2, 4, 40, 1.0),
            ]
        )
        assert balanced.imbalance_ratio == pytest.approx(1.0)
        skewed = diag(
            [
                WorkerLoad(0, 1, 1, 90, 3.0),
                WorkerLoad(1, 5, 9, 10, 1.0),
            ]
        )
        assert skewed.imbalance_ratio == pytest.approx(1.5)
        # No busy time reported: fall back to cell counts.
        by_cells = diag(
            [
                WorkerLoad(0, 1, 1, 30, 0.0),
                WorkerLoad(1, 1, 1, 10, 0.0),
            ]
        )
        assert by_cells.imbalance_ratio == pytest.approx(1.5)


class TestGracefulInterrupt:
    """Ctrl-C/SIGTERM mid-run must flush worker warmth, then re-raise.

    The seed behaviour tore the pool down on ``KeyboardInterrupt`` without
    merge-saving the caches, losing everything the finished tasks had paid
    for; the driver now routes the interrupt through the same end-of-run
    flush the healthy path uses (and the CLI maps it to exit code 130).
    The interrupt is injected through the ``parallel._wait_ready`` seam --
    the exact point a terminal Ctrl-C lands in the parent, which sits
    waiting on the pool while workers annotate.
    """

    @staticmethod
    def _interrupt_first_wait(monkeypatch):
        from repro.core import parallel

        real_wait = parallel._wait_ready
        calls = {"n": 0}

        def interrupting_wait(targets, timeout):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt()
            return real_wait(targets, timeout)

        monkeypatch.setattr(parallel, "_wait_ready", interrupting_wait)
        return calls

    def test_interrupt_flushes_caches_then_reraises(
        self, classifier, tmp_path, monkeypatch
    ):
        calls = self._interrupt_first_wait(monkeypatch)
        annotator = EntityAnnotator(
            classifier,
            _make_engine(),
            AnnotatorConfig(schedule="stealing", chunk_cost_target=1),
        )
        with pytest.raises(KeyboardInterrupt):
            annotate_tables_parallel(
                annotator,
                _corpus(n_tables=4),
                _TYPE_KEYS,
                workers=1,
                cache_dir=tmp_path,
            )
        # The interrupt landed on the very first wait (before any result
        # came home), the parent drained the in-flight task, and the
        # flush still ran: caches on disk despite the interrupt.
        assert calls["n"] >= 1
        assert (tmp_path / "search_results.cache").exists()
        assert (tmp_path / "label_memo.cache").exists()

    def test_interrupt_without_cache_dir_just_reraises(
        self, classifier, monkeypatch
    ):
        self._interrupt_first_wait(monkeypatch)
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        with pytest.raises(KeyboardInterrupt):
            annotate_tables_parallel(
                annotator, _corpus(n_tables=4), _TYPE_KEYS, workers=2
            )
