"""Parity and contracts of ``annotate_tables(workers=N)``.

The process-pool execution layer (:mod:`repro.core.parallel`) must be a
pure throughput optimisation: sharding a corpus across workers may change
*where* the work happens, never what comes back.  This suite pins:

* annotations byte-identical to the sequential run (healthy engine and
  fully-down engine alike), with the original corpus table order;
* corpus-wide diagnostics aggregated across every worker's shard;
* the shared cache directory data flow: workers warm-start from it,
  merge-save back, and the parent ends up warm too;
* argument validation and shard assignment.
"""

import random

import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.core.parallel import shard_tables
from repro.core.results import RunDiagnostics
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = [f"Venue {i}" for i in range(24)]
_TYPE_KEYS = ["museum", "restaurant"]


def _make_engine() -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock())
    rng = random.Random(0)
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
            )
            for name in _NAMES
            for i in range(4)
        ]
    )
    return engine


def _train(seed=1) -> SnippetTypeClassifier:
    rng = random.Random(seed)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_WORDS, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    return _train()


def _corpus(n_tables=8, rows_per_table=3) -> list[Table]:
    """Distinct-content corpus: every table names its own venues."""
    tables = []
    for index in range(n_tables):
        table = Table(
            name=f"t{index}", columns=[Column("Name", ColumnType.TEXT)]
        )
        for row in range(rows_per_table):
            table.append_row([_NAMES[(index * rows_per_table + row) % len(_NAMES)]])
        tables.append(table)
    return tables


class TestParallelParity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_byte_identical_to_sequential(self, classifier, workers):
        tables = _corpus()
        sequential = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        parallel = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=workers)
        assert parallel == sequential
        # Byte-identical, not merely equal: same tables in the same order
        # with value-identical cells (repr covers every field).
        assert repr(sorted(parallel.tables.items())) == repr(
            sorted(sequential.tables.items())
        )
        assert list(parallel.tables) == [table.name for table in tables]

    def test_more_workers_than_tables_clamps(self, classifier):
        tables = _corpus(n_tables=2)
        run = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=16)
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        assert run == reference

    def test_single_table_corpus_stays_sequential(self, classifier):
        # One table cannot shard; workers>1 must degrade gracefully.
        tables = _corpus(n_tables=1)
        run = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=4)
        assert set(run.tables) == {"t0"}

    def test_engine_down_everywhere_matches_sequential(self, classifier):
        tables = _corpus()
        down_a = _make_engine()
        down_a.available = False
        sequential = EntityAnnotator(
            classifier, down_a, AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        down_b = _make_engine()
        down_b.available = False
        parallel = EntityAnnotator(
            classifier, down_b, AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert parallel == sequential
        assert (
            parallel.diagnostics.search_failures
            == sequential.diagnostics.search_failures
            > 0
        )

    def test_workers_must_be_positive(self, classifier):
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        with pytest.raises(ValueError, match="workers"):
            annotator.annotate_tables(_corpus(), _TYPE_KEYS, workers=0)


class TestParallelDiagnostics:
    def test_diagnostics_aggregate_across_workers(self, classifier):
        tables = _corpus()
        sequential = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        parallel = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert parallel.diagnostics.n_tables == sequential.diagnostics.n_tables
        assert parallel.diagnostics.n_cells == sequential.diagnostics.n_cells
        # Distinct-content corpus: no query spans two shards, so even the
        # issued-query accounting matches the sequential run exactly.
        assert (
            parallel.diagnostics.queries_issued
            == sequential.diagnostics.queries_issued
        )
        assert (
            parallel.diagnostics.clock_charges
            == sequential.diagnostics.clock_charges
        )

    def test_combined_sums_every_counter(self):
        parts = [
            RunDiagnostics(
                n_tables=1,
                n_cells=2,
                search_failures=1,
                cache_hits=3,
                cache_misses=4,
                queries_issued=5,
                clock_charges=6,
                virtual_seconds=1.5,
            ),
            RunDiagnostics(
                n_tables=2,
                n_cells=3,
                search_failures=0,
                cache_hits=1,
                cache_misses=1,
                queries_issued=2,
                clock_charges=2,
                virtual_seconds=0.5,
            ),
        ]
        combined = RunDiagnostics.combined(parts)
        assert combined == RunDiagnostics(
            n_tables=3,
            n_cells=5,
            search_failures=1,
            cache_hits=4,
            cache_misses=5,
            queries_issued=7,
            clock_charges=8,
            virtual_seconds=2.0,
        )


class TestSharedCacheDirectory:
    def test_workers_populate_and_parent_warms(self, classifier, tmp_path):
        tables = _corpus()
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        run = annotator.annotate_tables(
            tables, _TYPE_KEYS, workers=2, cache_dir=tmp_path
        )
        assert run.tables
        # The workers merge-saved their shard caches; a fresh "process"
        # over the same corpus and classifier starts warm.
        fresh = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        assert fresh.load_caches(tmp_path) == {
            "search_results": True,
            "label_memo": True,
        }
        # Every shard's entries made it in (merge, not clobber): the
        # merged signature cache answers every table's queries.
        assert fresh.cell_annotator._label_memo
        warm = fresh.annotate_tables(tables, _TYPE_KEYS)
        assert warm == run
        # The parent itself reloaded the merged caches after the pool.
        assert annotator.engine._results_cache

    def test_sequential_run_honours_cache_dir_too(self, classifier, tmp_path):
        tables = _corpus(n_tables=3)
        first = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        first.annotate_tables(tables, _TYPE_KEYS, workers=1, cache_dir=tmp_path)
        second = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        loaded = second.load_caches(tmp_path)
        assert loaded == {"search_results": True, "label_memo": True}


class TestShardAssignment:
    def test_shards_partition_in_order(self):
        tables = _corpus(n_tables=7)
        shards = shard_tables(tables, 3)
        assert len(shards) == 3
        flattened = [table for shard in shards for table in shard]
        assert [t.name for t in flattened] == [t.name for t in tables]
        sizes = sorted(len(shard) for shard in shards)
        assert max(sizes) - min(sizes) <= 1

    def test_no_empty_shards(self):
        tables = _corpus(n_tables=2)
        shards = shard_tables(tables, 5)
        assert len(shards) == 2
        assert all(shard for shard in shards)
