"""Tests for seeded RNG plumbing and name generation."""

import random

import pytest

from repro.synth.names import GeneratedName, NameGenerator, _acronym
from repro.synth.rng import derive, rng_for, weighted_choice
from repro.synth.types import TYPE_SPECS, type_spec


class TestDerive:
    def test_stable(self):
        assert derive(13, "a", "b") == derive(13, "a", "b")

    def test_key_sensitivity(self):
        assert derive(13, "a") != derive(13, "b")

    def test_seed_sensitivity(self):
        assert derive(13, "a") != derive(14, "a")

    def test_path_order_matters(self):
        assert derive(13, "a", "b") != derive(13, "b", "a")

    def test_int_keys_supported(self):
        assert derive(13, 1, 2) == derive(13, "1", "2")

    def test_rng_for_reproducible(self):
        assert rng_for(13, "x").random() == rng_for(13, "x").random()


class TestWeightedChoice:
    def test_single_key(self):
        rng = random.Random(0)
        assert weighted_choice(rng, {"only": 1.0}) == "only"

    def test_respects_weights_statistically(self):
        rng = random.Random(0)
        draws = [weighted_choice(rng, {"a": 9.0, "b": 1.0}) for _ in range(500)]
        assert draws.count("a") > 350

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), {})

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), {"a": 0.0})


class TestAcronym:
    def test_skips_of_and_the(self):
        assert _acronym("Pemberton Institute of Technology") == "PIT"

    def test_plain_initials(self):
        assert _acronym("Crimson State University") == "CSU"


class TestNameGenerator:
    @pytest.mark.parametrize("spec", TYPE_SPECS, ids=lambda s: s.key)
    def test_generates_unique_names(self, spec):
        generator = NameGenerator(spec, random.Random(7))
        names = [generator.generate().name for _ in range(30)]
        assert len(set(names)) == 30

    def test_university_aliases_always_present(self):
        spec = type_spec("university")
        generator = NameGenerator(spec, random.Random(7))
        generated = [generator.generate() for _ in range(20)]
        assert all(g.alias is not None for g in generated)
        assert all(g.alias.isupper() for g in generated)

    def test_person_names_never_contain_type_word(self):
        spec = type_spec("singer")
        generator = NameGenerator(spec, random.Random(7))
        for _ in range(30):
            assert "singer" not in generator.generate().name.lower()

    def test_museum_type_word_rate_roughly_matches_spec(self):
        spec = type_spec("museum")
        generator = NameGenerator(spec, random.Random(7))
        generated = [generator.generate() for _ in range(200)]
        rate = sum(g.contains_type_word for g in generated) / len(generated)
        assert abs(rate - spec.type_word_in_name_rate) < 0.12

    def test_reserve_blocks_name(self):
        spec = type_spec("restaurant")
        generator = NameGenerator(spec, random.Random(7))
        first = generator.generate()
        generator2 = NameGenerator(spec, random.Random(7))
        generator2.reserve(first.name)
        assert generator2.generate().name != first.name

    def test_deterministic_per_rng_seed(self):
        spec = type_spec("hotel")
        first = NameGenerator(spec, random.Random(3)).generate()
        second = NameGenerator(spec, random.Random(3)).generate()
        assert first == second


class TestTypeSpecs:
    def test_twelve_types(self):
        assert len(TYPE_SPECS) == 12

    def test_paper_reference_counts_sum(self):
        total = sum(spec.table_references for spec in TYPE_SPECS)
        assert total == 1371  # 287+240+160+67+109+150+30+50+120+100+24+34

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            type_spec("airport")

    def test_mines_not_spatial(self):
        assert not type_spec("mine").spatial
        assert type_spec("restaurant").spatial
