"""Tests for the error-analysis tooling."""

import pytest

from repro.core.results import AnnotationRun, CellAnnotation
from repro.eval.error_analysis import (
    CORRECT,
    MISSED,
    WRONG_TYPE,
    analyse_errors,
)
from repro.eval.gold import GoldEntityReference, GoldStandard


@pytest.fixture()
def gold():
    g = GoldStandard()
    g.add(GoldEntityReference("t", 0, 0, "museum", "Louvre"))
    g.add(GoldEntityReference("t", 1, 0, "museum", "Orsay"))
    g.add(GoldEntityReference("t", 2, 0, "hotel", "Ritz"))
    g.add(GoldEntityReference("t", 3, 0, "hotel", "Plaza"))
    return g


@pytest.fixture()
def run():
    r = AnnotationRun()
    r.add(CellAnnotation("t", 0, 0, "museum", 0.9, cell_value="Louvre"))   # correct
    r.add(CellAnnotation("t", 2, 0, "museum", 0.8, cell_value="Ritz"))     # wrong type
    r.add(CellAnnotation("t", 5, 1, "museum", 0.7, cell_value="Review"))   # FP
    # rows 1 and 3 missed
    return r


class TestOutcomes:
    def test_every_gold_reference_classified(self, run, gold):
        report = analyse_errors(run, gold)
        assert len(report.gold_outcomes) == len(gold)

    def test_outcome_kinds(self, run, gold):
        report = analyse_errors(run, gold)
        by_value = {o.cell_value: o.outcome for o in report.gold_outcomes}
        assert by_value["Louvre"] == CORRECT
        assert by_value["Ritz"] == WRONG_TYPE
        assert by_value["Orsay"] == MISSED
        assert by_value["Plaza"] == MISSED

    def test_counts_per_type(self, run, gold):
        report = analyse_errors(run, gold)
        museum = report.outcome_counts("museum")
        assert museum == {CORRECT: 1, WRONG_TYPE: 0, MISSED: 1}
        hotel = report.outcome_counts("hotel")
        assert hotel == {CORRECT: 0, WRONG_TYPE: 1, MISSED: 1}

    def test_global_counts(self, run, gold):
        counts = analyse_errors(run, gold).outcome_counts()
        assert sum(counts.values()) == 4


class TestFalsePositives:
    def test_fp_includes_wrong_type_and_non_gold(self, run, gold):
        report = analyse_errors(run, gold)
        values = {fp.cell_value for fp in report.false_positives}
        assert values == {"Ritz", "Review"}

    def test_fp_gold_type_recorded(self, run, gold):
        report = analyse_errors(run, gold)
        by_value = {fp.cell_value: fp.gold_type for fp in report.false_positives}
        assert by_value["Ritz"] == "hotel"
        assert by_value["Review"] is None

    def test_fp_columns_surface_systematic_sources(self, gold):
        run = AnnotationRun()
        for row in range(4):
            run.add(CellAnnotation("t", row, 2, "museum", 0.9, cell_value="Museum"))
        report = analyse_errors(run, gold)
        assert report.fp_columns("museum") == {("t", 2): 4}


class TestConfusionsAndRendering:
    def test_confusion_pairs(self, run, gold):
        report = analyse_errors(run, gold)
        assert report.confusions() == {("hotel", "museum"): 1}

    def test_misses_listed(self, run, gold):
        report = analyse_errors(run, gold)
        assert [o.cell_value for o in report.misses("museum")] == ["Orsay"]

    def test_render_includes_confusions(self, run, gold):
        text = analyse_errors(run, gold).render()
        assert "hotel -> museum: 1" in text
        assert "False positives" in text

    def test_on_real_run(self, small_context):
        run = small_context.annotation_run(backend="svm", postprocess=True)
        report = analyse_errors(run, small_context.gft.gold)
        counts = report.outcome_counts()
        assert sum(counts.values()) == len(small_context.gft.gold)
        assert counts[CORRECT] > counts[WRONG_TYPE]
        # Render works at corpus scale.
        assert "Error analysis" in report.render()
