"""Tests for Equation 2 post-processing (Section 5.3, Figure 8)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.postprocessing import column_scores, eliminate_spurious, winning_column
from repro.core.results import CellAnnotation, TableAnnotation
from repro.tables.model import Column, ColumnType, Table


def _figure8_table(n_rows=6):
    """Name column of museums + a repeated 'Museum' label column."""
    rows = [[f"Gallery {i}", "Museum"] for i in range(n_rows)]
    return Table(
        name="fig8",
        columns=[Column("Name", ColumnType.TEXT), Column("Type", ColumnType.TEXT)],
        rows=rows,
    )


def _annotation(table, cells):
    annotation = TableAnnotation(table_name=table.name)
    for row, column, type_key, score in cells:
        annotation.add(CellAnnotation(
            table_name=table.name, row=row, column=column,
            type_key=type_key, score=score,
            cell_value=table.cell(row, column),
        ))
    return annotation


class TestColumnScores:
    def test_distinct_high_scores_beat_repeated_labels(self):
        table = _figure8_table(6)
        cells = [(i, 0, "museum", 0.8) for i in range(6)]
        cells += [(i, 1, "museum", 1.0) for i in range(6)]
        scores = column_scores(table, _annotation(table, cells).cells)
        # Name column: 6 * ln(1.8); label column: 6 * ln(1/6 + 1).
        assert scores[0] == pytest.approx(6 * math.log(1.8))
        assert scores[1] == pytest.approx(6 * math.log(1.0 / 6.0 + 1.0))
        assert scores[0] > scores[1]

    def test_without_repetition_factor_labels_win(self):
        table = _figure8_table(6)
        cells = [(i, 0, "museum", 0.8) for i in range(6)]
        cells += [(i, 1, "museum", 1.0) for i in range(6)]
        scores = column_scores(
            table, _annotation(table, cells).cells, use_repetition_factor=False
        )
        assert scores[1] > scores[0]  # the ablation: Figure 8 breaks

    def test_empty_annotations(self):
        assert column_scores(_figure8_table(), []) == {}


class TestWinningColumn:
    def test_argmax(self):
        assert winning_column({0: 2.0, 1: 5.0}) == 1

    def test_tie_prefers_leftmost(self):
        assert winning_column({2: 1.0, 0: 1.0}) == 0

    def test_empty_is_none(self):
        assert winning_column({}) is None


class TestEliminateSpurious:
    def test_figure8_scenario(self):
        table = _figure8_table(6)
        cells = [(i, 0, "museum", 0.8) for i in range(6)]
        cells += [(i, 1, "museum", 1.0) for i in range(6)]
        cleaned = eliminate_spurious(table, _annotation(table, cells))
        assert {c.column for c in cleaned.cells} == {0}
        assert len(cleaned.cells) == 6

    def test_types_resolved_independently(self):
        table = Table(
            name="mix",
            columns=[Column("Name"), Column("Hotel")],
            rows=[["Louvre", "Grand Hotel"], ["Orsay", "Plaza Lodge"]],
        )
        cells = [
            (0, 0, "museum", 0.9), (1, 0, "museum", 0.9),
            (0, 1, "hotel", 0.9), (1, 1, "hotel", 0.9),
        ]
        cleaned = eliminate_spurious(table, _annotation(table, cells))
        # Each type keeps its own winning column; nothing is lost.
        assert len(cleaned.cells) == 4

    def test_input_not_mutated(self):
        table = _figure8_table(3)
        annotation = _annotation(
            table,
            [(0, 0, "museum", 0.8), (0, 1, "museum", 1.0)],
        )
        before = len(annotation.cells)
        eliminate_spurious(table, annotation)
        assert len(annotation.cells) == before

    def test_empty_annotation_passthrough(self):
        table = _figure8_table(2)
        cleaned = eliminate_spurious(table, TableAnnotation(table_name="fig8"))
        assert len(cleaned.cells) == 0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),     # row
            st.integers(min_value=0, max_value=1),     # column
            st.floats(min_value=0.51, max_value=1.0),  # score
        ),
        min_size=1, max_size=30, unique_by=lambda t: (t[0], t[1]),
    )
)
def test_postprocessing_keeps_exactly_one_column_per_type(cells):
    table = Table(
        name="t",
        columns=[Column("A"), Column("B")],
        rows=[[f"a{i}", f"b{i}"] for i in range(10)],
    )
    annotation = _annotation(
        table, [(row, col, "museum", score) for row, col, score in cells]
    )
    cleaned = eliminate_spurious(table, annotation)
    columns = {c.column for c in cleaned.cells}
    assert len(columns) == 1
    # Survivors are exactly the input annotations of the winning column.
    winner = columns.pop()
    assert len(cleaned.cells) == sum(1 for _r, c, _s in cells if c == winner)
