"""Tests for the table model."""

import pytest

from repro.tables.model import Cell, Column, ColumnType, Table


@pytest.fixture()
def table():
    return Table(
        name="demo",
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("City", ColumnType.LOCATION),
            Column("Visitors", ColumnType.NUMBER),
        ],
        rows=[
            ["Louvre", "Paris", "9700000"],
            ["Met", "New York", "6200000"],
        ],
    )


class TestColumnType:
    def test_from_name_case_insensitive(self):
        assert ColumnType.from_name("location") is ColumnType.LOCATION
        assert ColumnType.from_name("TEXT") is ColumnType.TEXT

    def test_from_name_unknown(self):
        with pytest.raises(ValueError):
            ColumnType.from_name("Geometry")

    def test_all_four_gft_types_exist(self):
        assert {t.value for t in ColumnType} == {"Text", "Number", "Location", "Date"}


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table(name="t", columns=[])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            Table(name="t", columns=[Column("A")], rows=[["x", "y"]])

    def test_rejects_non_string_values(self):
        with pytest.raises(TypeError):
            Table(name="t", columns=[Column("A")], rows=[[42]])


class TestAccess:
    def test_shape(self, table):
        assert table.shape == (2, 3)
        assert table.n_rows == 2
        assert table.n_columns == 3

    def test_cell_lookup(self, table):
        assert table.cell(0, 0) == "Louvre"
        assert table.cell(1, 2) == "6200000"

    def test_cell_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.cell(5, 0)
        with pytest.raises(IndexError):
            table.cell(0, 9)

    def test_column_values(self, table):
        assert table.column_values(1) == ["Paris", "New York"]

    def test_column_index_by_name(self, table):
        assert table.column_index("City") == 1
        with pytest.raises(KeyError):
            table.column_index("Country")

    def test_column_type(self, table):
        assert table.column_type(2) is ColumnType.NUMBER

    def test_iter_cells_row_major(self, table):
        cells = list(table.iter_cells())
        assert cells[0] == Cell(0, 0, "Louvre")
        assert cells[3] == Cell(1, 0, "Met")
        assert len(cells) == 6

    def test_row_copy_is_independent(self, table):
        row = table.row(0)
        row[0] = "changed"
        assert table.cell(0, 0) == "Louvre"

    def test_header(self, table):
        assert table.header() == ["Name", "City", "Visitors"]


class TestMutation:
    def test_append_row(self, table):
        table.append_row(["Uffizi", "Florence", "2200000"])
        assert table.n_rows == 3

    def test_append_validates_width(self, table):
        with pytest.raises(ValueError):
            table.append_row(["just one"])


class TestStatistics:
    def test_distinct_count(self):
        t = Table(name="t", columns=[Column("A")], rows=[["x"], ["x"], ["y"]])
        assert t.distinct_count(0) == 2

    def test_value_occurrences_matches_eq2_o(self):
        t = Table(name="t", columns=[Column("A")], rows=[["Museum"]] * 3 + [["Gallery"]])
        occurrences = t.value_occurrences(0)
        assert occurrences == {"Museum": 3, "Gallery": 1}
