"""Tests for the experiment harness (on the reduced-scale world).

These assert the *shape* invariants the paper reports; the full-scale
numbers live in the benchmarks.
"""

import pytest

from repro.eval import experiments
from repro.synth.types import TYPE_SPECS


@pytest.fixture(scope="module")
def ctx(small_context):
    return small_context


class TestContext:
    def test_cached_per_config(self, ctx, small_config):
        assert experiments.build_context(small_config) is ctx

    def test_annotation_runs_memoised(self, ctx):
        first = ctx.annotation_run(backend="svm", postprocess=True)
        second = ctx.annotation_run(backend="svm", postprocess=True)
        assert first is second

    def test_raw_and_post_differ_in_object(self, ctx):
        raw = ctx.annotation_run(backend="svm", postprocess=False)
        post = ctx.annotation_run(backend="svm", postprocess=True)
        assert raw is not post
        assert len(post) <= len(raw)

    def test_unknown_corpus_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.annotation_run(corpus="nope")


class TestTable2:
    def test_rows_cover_all_types(self, ctx):
        result = experiments.run_table2(ctx)
        assert len(result.rows) == 12
        assert {row[0] for row in result.rows} == {s.display for s in TYPE_SPECS}

    def test_small_corpora_flagged(self, ctx):
        result = experiments.run_table2(ctx)
        by_type = {row[0]: row for row in result.rows}
        assert by_type["Simpson's episodes"][1] < by_type["Museums"][1]

    def test_classifier_f_reasonable(self, ctx):
        result = experiments.run_table2(ctx)
        for row in result.rows:
            assert row[4] > 0.6  # SVM F per type

    def test_render_contains_header(self, ctx):
        text = experiments.run_table2(ctx).render()
        assert "|TR|" in text and "SVM" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return experiments.run_table1(ctx)

    def test_four_methods(self, result):
        assert result.methods == ["SVM", "BAYES", "TIN", "TIS"]

    def test_tin_tis_zero_on_people_and_cinema(self, result):
        for type_key in ("actor", "singer", "scientist", "film", "simpsons_episode"):
            assert result.f_of("TIN", type_key) == 0.0
            assert result.f_of("TIS", type_key) == 0.0

    def test_svm_beats_baselines_on_poi_average(self, result):
        poi = [s.key for s in TYPE_SPECS if s.category == "poi"]
        svm = result.evaluations["SVM"].average(poi)[2]
        tin = result.evaluations["TIN"].average(poi)[2]
        tis = result.evaluations["TIS"].average(poi)[2]
        assert svm > tin and svm > tis

    def test_bayes_recall_at_least_svm_on_average(self, result):
        keys = [s.key for s in TYPE_SPECS]
        svm_r = result.evaluations["SVM"].average(keys)[1]
        bayes_r = result.evaluations["BAYES"].average(keys)[1]
        assert bayes_r >= svm_r - 0.05

    def test_render_has_average_rows(self, result):
        text = result.render()
        assert text.count("AVERAGE") == 3


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return experiments.run_table3(ctx)

    def test_postprocessing_never_much_worse(self, result):
        for row in result.rows:
            assert row[2] >= row[1] - 0.08

    def test_disambiguation_only_for_spatial_types(self, result):
        by_display = {row[0]: row for row in result.rows}
        assert by_display["Mines"][3] is None
        assert by_display["Actors"][3] is None
        assert by_display["Restaurants"][3] is not None

    def test_render_uses_dashes(self, result):
        assert "-" in result.render()


class TestComparisonAndCoverage:
    def test_comparison_close_to_limaye(self, ctx):
        result = experiments.run_comparison(ctx)
        assert abs(result.ours_f - result.limaye_f) < 0.25
        assert result.ours_f > 0.5
        assert 0.5 < result.catalogue_coverage <= 1.0

    def test_coverage_near_paper(self, ctx):
        result = experiments.run_coverage(ctx)
        assert 0.08 < result.overall < 0.40
        assert "OVERALL" in result.render()


class TestEfficiency:
    def test_seconds_per_row_latency_bound(self, ctx):
        result = experiments.run_efficiency(ctx, sizes=(10, 25))
        per_row = result.seconds_per_row(10)
        # one search per candidate name cell, 0.3 virtual s each
        assert 0.2 < per_row < 1.0
        # disambiguation adds geocoding latency
        assert result.with_disambiguation[0][3] > per_row

    def test_linear_scaling(self, ctx):
        result = experiments.run_efficiency(ctx, sizes=(10, 25))
        assert result.seconds_per_row(10) == pytest.approx(
            result.seconds_per_row(25), rel=0.2
        )


class TestFigures:
    def test_figure6_heuristic(self, ctx):
        result = experiments.run_figure6(ctx)
        assert "Curators" in result.dropped
        assert result.n_positive_entities > 0
        assert "[x] Museums contains Curators" in result.render()

    def test_figure7_paper_resolution(self, ctx):
        result = experiments.run_figure7(ctx)
        assert "Washington, District of Columbia" in result.chosen[(12, 1)]
        assert "Paris, Texas" in result.chosen[(20, 2)]
        assert "College Park, Maryland" in result.chosen[(13, 1)]
        assert result.render().count("T(") == 6
