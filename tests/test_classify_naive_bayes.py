"""Tests for the multinomial Naive Bayes classifier."""

import numpy as np
import pytest
from scipy import sparse

from repro.classify.naive_bayes import MultinomialNaiveBayes


def _matrix(rows):
    return sparse.csr_matrix(np.asarray(rows, dtype=np.float64))


@pytest.fixture()
def separable():
    # feature 0 marks class 'a', feature 1 marks class 'b'.
    X = _matrix([[1.0, 0.0], [0.9, 0.1], [0.0, 1.0], [0.1, 0.9]])
    labels = ["a", "a", "b", "b"]
    return X, labels


class TestFitPredict:
    def test_learns_separable_classes(self, separable):
        X, labels = separable
        model = MultinomialNaiveBayes().fit(X, labels)
        assert model.predict(X) == labels

    def test_predicts_new_points(self, separable):
        X, labels = separable
        model = MultinomialNaiveBayes().fit(X, labels)
        assert model.predict(_matrix([[0.8, 0.2]])) == ["a"]
        assert model.predict(_matrix([[0.2, 0.8]])) == ["b"]

    def test_always_predicts_some_class(self, separable):
        # NB never abstains: even a zero vector gets the arg-max class.
        X, labels = separable
        model = MultinomialNaiveBayes().fit(X, labels)
        assert model.predict(_matrix([[0.0, 0.0]]))[0] in ("a", "b")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MultinomialNaiveBayes().predict(_matrix([[1.0]]))

    def test_invalid_prior_counts(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(prior_counts=0.0)


class TestProbabilities:
    def test_log_proba_rows_normalise(self, separable):
        X, labels = separable
        model = MultinomialNaiveBayes().fit(X, labels)
        log_proba = model.predict_log_proba(X)
        sums = np.exp(log_proba).sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_uniform_priors_by_default(self, separable):
        X, labels = separable
        model = MultinomialNaiveBayes().fit(X, labels)
        assert np.allclose(model.class_log_prior_, -np.log(2))

    def test_estimated_priors_reflect_imbalance(self):
        X = _matrix([[1, 0]] * 3 + [[0, 1]])
        labels = ["a"] * 3 + ["b"]
        model = MultinomialNaiveBayes(uniform_priors=False).fit(X, labels)
        assert model.class_log_prior_[0] > model.class_log_prior_[1]

    def test_length_normalization_scales_scores(self):
        # Rows with different total mass: normalisation divides each row's
        # log-likelihood by its length, changing magnitudes but not winners.
        X = _matrix([[2.0, 0.0], [0.0, 0.5]])
        labels = ["a", "b"]
        plain = MultinomialNaiveBayes().fit(X, labels)
        normed = MultinomialNaiveBayes(length_normalization=True).fit(X, labels)
        assert plain.predict(X) == normed.predict(X)
        assert not np.allclose(
            plain.joint_log_likelihood(X), normed.joint_log_likelihood(X)
        )


class TestBinaryMarginMode:
    def test_decision_function_sign_matches_prediction(self):
        X = _matrix([[1.0, 0.0], [0.0, 1.0], [0.9, 0.1], [0.1, 0.9]])
        y = np.asarray([1.0, -1.0, 1.0, -1.0])
        model = MultinomialNaiveBayes().fit(X, y)
        margins = model.decision_function(X)
        assert (margins > 0).tolist() == [True, False, True, False]

    def test_decision_function_requires_binary_fit(self, separable):
        X, labels = separable
        model = MultinomialNaiveBayes().fit(X, labels)
        with pytest.raises(RuntimeError):
            model.decision_function(X)


class TestSmoothing:
    def test_unseen_feature_does_not_zero_probability(self):
        X = _matrix([[1.0, 0.0], [0.0, 1.0]])
        model = MultinomialNaiveBayes().fit(X, ["a", "b"])
        # A point with both features still gets finite scores.
        scores = model.joint_log_likelihood(_matrix([[0.5, 0.5]]))
        assert np.all(np.isfinite(scores))

    def test_larger_prior_counts_flatten_distributions(self):
        X = _matrix([[1.0, 0.0], [0.0, 1.0]])
        sharp = MultinomialNaiveBayes(prior_counts=0.01).fit(X, ["a", "b"])
        flat = MultinomialNaiveBayes(prior_counts=100.0).fit(X, ["a", "b"])
        margin_sharp = sharp.joint_log_likelihood(_matrix([[1.0, 0.0]]))
        margin_flat = flat.joint_log_likelihood(_matrix([[1.0, 0.0]]))
        gap_sharp = margin_sharp[0, 0] - margin_sharp[0, 1]
        gap_flat = margin_flat[0, 0] - margin_flat[0, 1]
        assert gap_sharp > gap_flat > 0
