"""Tests for the POI repository, extraction and faceted browsing."""

import pytest

from repro.core.results import CellAnnotation, TableAnnotation
from repro.rdfstore.extract import extract_pois
from repro.rdfstore.facets import FacetedBrowser
from repro.rdfstore.store import PoiRecord, PoiStore
from repro.tables.model import Column, ColumnType, Table


@pytest.fixture()
def store():
    s = PoiStore()
    s.add_all([
        PoiRecord("Melisse", "restaurant", city="Santa Monica",
                  phone="(310) 395-0881", source_table="gft-1"),
        PoiRecord("Louvre", "museum", city="Paris", source_table="gft-2"),
        PoiRecord("Orsay", "museum", city="Paris", source_table="gft-2"),
        PoiRecord("Ritz", "hotel", city="Paris", source_table="gft-3"),
    ])
    return s


class TestPoiStore:
    def test_uris_minted_sequentially(self, store):
        assert store.uris() == ["poi:00001", "poi:00002", "poi:00003", "poi:00004"]

    def test_get_roundtrip(self, store):
        assert store.get("poi:00001").name == "Melisse"

    def test_unknown_uri(self, store):
        with pytest.raises(KeyError):
            store.get("poi:99999")

    def test_of_type(self, store):
        assert len(store.of_type("museum")) == 2

    def test_in_city(self, store):
        assert len(store.in_city("Paris")) == 3

    def test_triples_queryable_with_sparql(self, store):
        from repro.kb.sparql import select
        rows = select(
            store.triples,
            'SELECT ?x WHERE { ?x poi:type "museum" . ?x poi:city "Paris" }',
        )
        assert len(rows) == 2

    def test_record_validation(self):
        with pytest.raises(ValueError):
            PoiRecord("", "museum")
        with pytest.raises(ValueError):
            PoiRecord("X", "")


class TestFacets:
    def test_counts_by_type(self, store):
        counts = FacetedBrowser(store).facet_counts("type")
        assert counts == {"restaurant": 1, "museum": 2, "hotel": 1}

    def test_counts_with_filter(self, store):
        counts = FacetedBrowser(store).facet_counts("type", city="Paris")
        assert counts == {"museum": 2, "hotel": 1}

    def test_select_intersects_filters(self, store):
        records = FacetedBrowser(store).select(city="Paris", type="hotel")
        assert [r.name for r in records] == ["Ritz"]

    def test_unknown_facet_rejected(self, store):
        browser = FacetedBrowser(store)
        with pytest.raises(ValueError):
            browser.facet_counts("rating")
        with pytest.raises(ValueError):
            browser.select(rating="5")

    def test_summary_mentions_counts(self, store):
        summary = FacetedBrowser(store).summary()
        assert "4 entries" in summary
        assert "museum (2)" in summary


class TestExtraction:
    @pytest.fixture()
    def table(self):
        return Table(
            name="gft-demo",
            columns=[
                Column("Name", ColumnType.TEXT),
                Column("Address", ColumnType.LOCATION),
                Column("Phone", ColumnType.TEXT),
                Column("Website", ColumnType.TEXT),
            ],
            rows=[
                ["Melisse", "1104 Wilshire Blvd, Santa Monica",
                 "(310) 395-0881", "https://www.melisse.com"],
                ["Not An Entity", "", "", ""],
            ],
        )

    def _annotation(self, table):
        annotation = TableAnnotation(table_name=table.name)
        annotation.add(CellAnnotation(
            table.name, 0, 0, "restaurant", 0.9, cell_value="Melisse"
        ))
        return annotation

    def test_extracts_annotated_rows_only(self, table):
        records = extract_pois(table, self._annotation(table))
        assert len(records) == 1
        assert records[0].name == "Melisse"

    def test_companion_columns_harvested(self, table):
        record = extract_pois(table, self._annotation(table))[0]
        assert record.phone == "(310) 395-0881"
        assert record.website == "https://www.melisse.com"
        assert record.address == "1104 Wilshire Blvd, Santa Monica"
        assert record.city == "Santa Monica"
        assert record.source_table == "gft-demo"
        assert record.score == pytest.approx(0.9)

    def test_type_filter(self, table):
        records = extract_pois(table, self._annotation(table), type_keys=["hotel"])
        assert records == []

    def test_city_only_location_column(self):
        table = Table(
            name="t",
            columns=[Column("Name", ColumnType.TEXT),
                     Column("City", ColumnType.LOCATION)],
            rows=[["Louvre", "Paris"]],
        )
        annotation = TableAnnotation(table_name="t")
        annotation.add(CellAnnotation("t", 0, 0, "museum", 1.0))
        record = extract_pois(table, annotation)[0]
        assert record.city == "Paris"
