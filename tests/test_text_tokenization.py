"""Tests for repro.text.tokenization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenization import iter_tokens, token_count, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("LOUVRE Museum") == ["louvre", "museum"]

    def test_splits_on_punctuation(self):
        assert tokenize("Paris,France;Genoa.Italy") == [
            "paris", "france", "genoa", "italy",
        ]

    def test_drops_digits(self):
        assert tokenize("1600 Pennsylvania Avenue") == ["pennsylvania", "avenue"]

    def test_strips_possessive_s(self):
        assert tokenize("Simpson's episodes") == ["simpson", "episodes"]

    def test_strips_trailing_apostrophe(self):
        assert tokenize("the actors' guild") == ["the", "actors", "guild"]

    def test_keeps_internal_apostrophe_word(self):
        # "don't" tokenizes as one word before the possessive strip.
        assert tokenize("don't stop") == ["don't", "stop"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation_and_digits(self):
        assert tokenize("123 ... 456 !!!") == []

    def test_unicode_accents_split(self):
        # Non-ASCII letters are token boundaries for this ASCII tokenizer.
        tokens = tokenize("Musée du Louvre")
        assert "du" in tokens
        assert "louvre" in tokens

    def test_hyphenated_words_split(self):
        assert tokenize("state-of-the-art") == ["state", "of", "the", "art"]


class TestIterTokens:
    def test_chains_documents(self):
        assert list(iter_tokens(["a b", "c"])) == ["a", "b", "c"]

    def test_empty_iterable(self):
        assert list(iter_tokens([])) == []


class TestTokenCount:
    def test_counts_words_not_chars(self):
        assert token_count("three word phrase") == 3

    def test_numbers_do_not_count(self):
        assert token_count("42 is the answer") == 3


@given(st.text(max_size=200))
def test_tokenize_always_lowercase_alpha(text):
    for token in tokenize(text):
        assert token
        assert all(ch.isalpha() or ch == "'" for ch in token)
        assert token == token.lower()


@given(st.text(max_size=200))
def test_tokenize_idempotent_on_joined_output(text):
    tokens = tokenize(text)
    assert tokenize(" ".join(tokens)) == tokens
