"""Tests for the virtual clock."""

import pytest

from repro.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.elapsed_seconds == 0.0
        assert clock.n_charges == 0

    def test_charges_accumulate(self):
        clock = VirtualClock()
        clock.charge(0.3)
        clock.charge(0.2)
        assert clock.elapsed_seconds == pytest.approx(0.5)
        assert clock.n_charges == 2

    def test_zero_charge_counts_as_call(self):
        clock = VirtualClock()
        clock.charge(0.0)
        assert clock.n_charges == 1
        assert clock.elapsed_seconds == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().charge(-0.1)

    def test_reset(self):
        clock = VirtualClock()
        clock.charge(1.0)
        clock.reset()
        assert clock.elapsed_seconds == 0.0
        assert clock.n_charges == 0
