"""Tests for the mini-SPARQL evaluator."""

import pytest

from repro.kb.sparql import SparqlError, parse_query, select
from repro.kb.triples import TripleStore


@pytest.fixture()
def store():
    s = TripleStore()
    s.add("db:louvre", "rdf:type", "museum")
    s.add("db:louvre", "dcterms:subject", "Museums in France")
    s.add("db:orsay", "rdf:type", "museum")
    s.add("db:orsay", "dcterms:subject", "Museums in France")
    s.add("db:melisse", "rdf:type", "restaurant")
    s.add("Museums in France", "skos:broader", "Museums in Europe")
    s.add("Museums in Europe", "skos:broader", "Museums")
    return s


class TestParse:
    def test_single_pattern(self):
        variables, patterns = parse_query('SELECT ?x WHERE { ?x rdf:type "museum" }')
        assert variables == ["?x"]
        assert len(patterns) == 1

    def test_multi_pattern(self):
        _vars, patterns = parse_query(
            "SELECT ?x WHERE { ?x rdf:type ?t . ?x dcterms:subject ?c }"
        )
        assert len(patterns) == 2

    def test_unbound_projection_rejected(self):
        with pytest.raises(SparqlError):
            parse_query('SELECT ?z WHERE { ?x rdf:type "museum" }')

    def test_empty_where_rejected(self):
        with pytest.raises(SparqlError):
            parse_query("SELECT ?x WHERE { }")

    def test_two_term_pattern_rejected(self):
        with pytest.raises(SparqlError):
            parse_query("SELECT ?x WHERE { ?x rdf:type }")

    def test_garbage_rejected(self):
        with pytest.raises(SparqlError):
            parse_query("ASK { ?x ?y ?z }")


class TestSelect:
    def test_simple_lookup(self, store):
        rows = select(store, 'SELECT ?x WHERE { ?x rdf:type "museum" }')
        assert rows == [("db:louvre",), ("db:orsay",)]

    def test_join_on_shared_variable(self, store):
        rows = select(
            store,
            'SELECT ?x WHERE { ?x rdf:type "museum" . '
            '?x dcterms:subject "Museums in France" }',
        )
        assert rows == [("db:louvre",), ("db:orsay",)]

    def test_chain_traversal(self, store):
        rows = select(
            store,
            'SELECT ?c WHERE { ?c skos:broader ?p . ?p skos:broader "Museums" }',
        )
        assert rows == [("Museums in France",)]

    def test_multi_variable_projection(self, store):
        rows = select(store, "SELECT ?x ?t WHERE { ?x rdf:type ?t }")
        assert ("db:melisse", "restaurant") in rows
        assert len(rows) == 3

    def test_no_results(self, store):
        assert select(store, 'SELECT ?x WHERE { ?x rdf:type "airport" }') == []

    def test_quoted_constants_with_spaces(self, store):
        rows = select(
            store, 'SELECT ?x WHERE { ?x dcterms:subject "Museums in France" }'
        )
        assert len(rows) == 2

    def test_repeated_variable_consistency(self, store):
        # ?x must bind to the same value across patterns.
        rows = select(
            store,
            'SELECT ?x WHERE { ?x rdf:type "museum" . ?x rdf:type "restaurant" }',
        )
        assert rows == []

    def test_results_deduplicated_and_sorted(self, store):
        rows = select(store, "SELECT ?t WHERE { ?x rdf:type ?t }")
        assert rows == [("museum",), ("restaurant",)]
