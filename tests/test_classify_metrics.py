"""Tests for classification metrics (the Section 6.2 definitions)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.classify.metrics import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    f_measure,
    macro_average,
    precision_recall_f1,
)


class TestPrecisionRecallF1:
    def test_perfect(self):
        assert precision_recall_f1(10, 10, 10) == (1.0, 1.0, 1.0)

    def test_paper_style_counts(self):
        p, r, f = precision_recall_f1(8, 10, 16)
        assert (p, r) == (0.8, 0.5)
        assert math.isclose(f, 2 * 0.8 * 0.5 / 1.3)

    def test_zero_predictions(self):
        assert precision_recall_f1(0, 0, 5) == (0.0, 0.0, 0.0)

    def test_zero_gold(self):
        p, r, f = precision_recall_f1(0, 3, 0)
        assert (p, r, f) == (0.0, 0.0, 0.0)


class TestFMeasure:
    def test_harmonic_mean(self):
        assert math.isclose(f_measure(1.0, 0.5), 2 / 3)

    def test_zero_when_both_zero(self):
        assert f_measure(0.0, 0.0) == 0.0

    def test_symmetric(self):
        assert f_measure(0.3, 0.9) == f_measure(0.9, 0.3)


class TestAccuracy:
    def test_all_correct(self):
        assert accuracy(["a", "b"], ["a", "b"]) == 1.0

    def test_half_correct(self):
        assert accuracy(["a", "b"], ["a", "c"]) == 0.5

    def test_empty_is_zero(self):
        assert accuracy([], []) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(["a"], ["a", "b"])


class TestConfusionMatrix:
    def test_diagonal_counts_matches(self):
        matrix = confusion_matrix(["a", "b", "a"], ["a", "b", "b"], ["a", "b"])
        assert matrix[0, 0] == 1  # a -> a
        assert matrix[0, 1] == 1  # a -> b
        assert matrix[1, 1] == 1  # b -> b

    def test_unknown_labels_ignored(self):
        matrix = confusion_matrix(["a", "z"], ["a", "a"], ["a"])
        assert matrix.sum() == 1


class TestClassificationReport:
    def test_per_class_scores(self):
        report = ClassificationReport.from_predictions(
            ["a", "a", "b"], ["a", "b", "b"], labels=["a", "b"]
        )
        assert report.per_class["a"].precision == 1.0
        assert report.per_class["a"].recall == 0.5
        assert report.per_class["b"].precision == 0.5
        assert report.per_class["b"].recall == 1.0

    def test_macro_f1_averages(self):
        report = ClassificationReport.from_predictions(
            ["a", "b"], ["a", "b"], labels=["a", "b"]
        )
        assert report.macro_f1() == 1.0

    def test_f1_of_unknown_label_is_zero(self):
        report = ClassificationReport.from_predictions(["a"], ["a"], labels=["a"])
        assert report.f1_of("nope") == 0.0

    def test_labels_default_to_gold_labels(self):
        report = ClassificationReport.from_predictions(["a", "b"], ["a", "a"])
        assert set(report.per_class) == {"a", "b"}


class TestMacroAverage:
    def test_averages_triples(self):
        result = macro_average({"x": (1.0, 0.5, 0.6), "y": (0.0, 0.5, 0.2)})
        assert result == (0.5, 0.5, 0.4)

    def test_empty_is_zero(self):
        assert macro_average({}) == (0.0, 0.0, 0.0)


@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
)
def test_prf_bounds(n_correct, extra_predicted, extra_gold):
    n_predicted = n_correct + extra_predicted
    n_gold = n_correct + extra_gold
    p, r, f = precision_recall_f1(n_correct, n_predicted, n_gold)
    assert 0.0 <= p <= 1.0
    assert 0.0 <= r <= 1.0
    assert min(p, r) - 1e-12 <= f <= max(p, r) + 1e-12
