"""Tests for the multi-class snippet classifier facade."""

import random

import pytest

from repro.classify.base import LabelEncoder, OneVsRestClassifier
from repro.classify.dataset import TextDataset
from repro.classify.linear_svm import LinearSVM
from repro.classify.snippet import OTHER_LABEL, SnippetTypeClassifier

_POOLS = {
    "museum": "exhibit gallery collection paintings curator museum artifacts".split(),
    "restaurant": "menu chef cuisine dining wine dishes tasting".split(),
    "singer": "vocals album lyrics concert ballad chart touring".split(),
}


def _corpus(n_per_class=40, seed=0):
    rng = random.Random(seed)
    ds = TextDataset()
    for label, pool in _POOLS.items():
        for _ in range(n_per_class):
            ds.add(" ".join(rng.choices(pool, k=10)), label)
    return ds


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder().fit(["b", "a", "b"])
        codes = enc.transform(["a", "b"])
        assert enc.inverse_transform(codes) == ["a", "b"]

    def test_sorted_classes(self):
        enc = LabelEncoder().fit(["z", "a"])
        assert enc.classes_ == ["a", "z"]

    def test_unknown_label_raises(self):
        enc = LabelEncoder().fit(["a"])
        with pytest.raises(KeyError):
            enc.transform(["zzz"])


class TestOneVsRest:
    def test_one_estimator_per_class(self):
        from repro.text.vectorizer import SnippetVectorizer

        ds = _corpus(10)
        X = SnippetVectorizer(min_count=1).fit_transform(ds.texts)
        ovr = OneVsRestClassifier(lambda: LinearSVM()).fit(X, ds.labels)
        assert len(ovr.estimators_) == 3
        assert ovr.decision_matrix(X).shape == (len(ds), 3)

    def test_unfitted_raises(self):
        from scipy import sparse
        import numpy as np

        ovr = OneVsRestClassifier(lambda: LinearSVM())
        with pytest.raises(RuntimeError):
            ovr.decision_matrix(sparse.csr_matrix(np.zeros((1, 2))))


class TestSnippetTypeClassifier:
    @pytest.fixture(scope="class", params=["svm", "bayes", "kernel-svm"])
    def fitted(self, request):
        return SnippetTypeClassifier(backend=request.param, min_count=1).fit(
            _corpus(30)
        )

    def test_classifies_clear_snippets(self, fitted):
        assert fitted.classify("the gallery shows paintings and artifacts") == "museum"
        assert fitted.classify("a tasting menu by the chef with wine") == "restaurant"

    def test_classify_many_matches_classify(self, fitted):
        snippets = ["curator gallery exhibit", "lyrics album concert"]
        assert fitted.classify_many(snippets) == [
            fitted.classify(s) for s in snippets
        ]

    def test_types_listed(self, fitted):
        assert fitted.types_ == ["museum", "restaurant", "singer"]

    def test_empty_batch(self, fitted):
        assert fitted.classify_many([]) == []

    def test_chunked_workers_match_single_thread(self, fitted):
        # Chunked multi-threaded scoring is a pure throughput knob: the
        # labels must be byte-identical, in input order, at any worker
        # count -- including batches big enough to actually split.
        rng = random.Random(3)
        pools = list(_POOLS.values())
        snippets = [
            " ".join(rng.choices(pools[i % len(pools)], k=10))
            for i in range(300)
        ]
        reference = fitted.classify_many(snippets)
        for workers in (2, 3, 8):
            assert fitted.classify_many(snippets, workers=workers) == reference

    def test_small_batches_skip_thread_dispatch(self, fitted):
        # Below the chunking threshold the inline path answers.
        snippets = ["curator gallery exhibit"] * 5
        assert fitted.classify_many(snippets, workers=4) == fitted.classify_many(
            snippets
        )

    def test_workers_must_be_positive(self, fitted):
        with pytest.raises(ValueError, match="workers"):
            fitted.classify_many(["curator gallery exhibit"], workers=0)

    def test_evaluate_reports_per_type(self, fitted):
        report = fitted.evaluate(_corpus(8, seed=9))
        assert set(report.per_class) == {"museum", "restaurant", "singer"}
        assert report.macro_f1() > 0.9


class TestAbstention:
    def test_svm_abstains_on_gibberish(self):
        clf = SnippetTypeClassifier(backend="svm", min_count=1).fit(_corpus(30))
        # Tokens never seen in training -> zero vector -> no positive margin.
        assert clf.classify("zyzzyva qwerty flibber") == OTHER_LABEL

    def test_bayes_never_abstains(self):
        clf = SnippetTypeClassifier(backend="bayes", min_count=1).fit(_corpus(30))
        assert clf.classify("zyzzyva qwerty flibber") in _POOLS

    def test_explicit_other_class_trainable(self):
        ds = _corpus(20)
        rng = random.Random(4)
        for _ in range(20):
            ds.add(" ".join(rng.choices("stock market trading shares".split(), k=8)),
                   OTHER_LABEL)
        clf = SnippetTypeClassifier(backend="bayes", min_count=1).fit(ds)
        assert clf.classify("stock market shares") == OTHER_LABEL
        # OTHER is not reported as a type.
        assert OTHER_LABEL not in clf.types_


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            SnippetTypeClassifier(backend="forest")

    def test_empty_training_set(self):
        with pytest.raises(ValueError):
            SnippetTypeClassifier().fit(TextDataset())

    def test_unfitted_classify(self):
        with pytest.raises(RuntimeError):
            SnippetTypeClassifier().classify("anything")
