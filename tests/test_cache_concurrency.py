"""Concurrent sharing of one cache directory (the multi-worker contract).

``annotate_tables(workers=N)`` points every worker at one ``cache_dir``;
this suite pins the three guarantees that make that safe
(:mod:`repro.persistence`):

* **no lost entries** -- saves are merge-on-save (load-merge-replace under
  an advisory lock), so a writer that never saw another writer's entries
  still preserves them, in-process and across real processes;
* **no corruption** -- interleaved multi-process savers always leave a
  loadable file containing the union of everybody's entries;
* **bounded waiting** -- a held lock makes loads report a cold start
  (``None``/``False``) and saves report a skip (``False``) after the
  timeout instead of deadlocking or crashing.

The chaos section extends the same contract to the sharded disk store
(:class:`repro.persistence.ShardedDiskCacheStore`): readers racing a
merge-compaction always see a coherent store, a writer SIGKILLed
mid-append leaves at worst a torn delta tail (cold start for the tail,
never a crash), and a foreign fingerprint invalidates the store instead
of serving another world's answers.
"""

import multiprocessing
import os
import pickle
import random
import signal
import time

import pytest

from repro import persistence
from repro.clock import VirtualClock
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

fcntl = pytest.importorskip("fcntl")

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = [f"Venue {i}" for i in range(12)]


def _make_engine() -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock())
    rng = random.Random(0)
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
            )
            for name in _NAMES
            for i in range(4)
        ]
    )
    return engine


class TestMergeOnSave:
    def test_second_writer_preserves_first_writers_entries(self, tmp_path):
        # Two engines over the same corpus, warming disjoint query sets.
        # Writer B never loaded writer A's file; a last-writer-wins
        # replace would silently lose A's entries.
        path = tmp_path / "search_results.cache"
        first = _make_engine()
        first.search_many(_NAMES[:6], k=5)
        assert first.save_results_cache(path) is True
        second = _make_engine()
        second.search_many(_NAMES[6:], k=5)
        assert second.save_results_cache(path) is True

        fresh = _make_engine()
        assert fresh.load_results_cache(path) is True
        fresh_signatures = set(fresh._results_cache)
        assert set(first._results_cache) <= fresh_signatures
        assert set(second._results_cache) <= fresh_signatures

    def test_incompatible_existing_file_is_replaced_not_merged(self, tmp_path):
        path = tmp_path / "cache.bin"
        persistence.save_cache_payload(path, "k", "old-fingerprint", {"a": 1})
        assert persistence.save_cache_payload(
            path,
            "k",
            "new-fingerprint",
            {"b": 2},
            merge=lambda old, new: {**old, **new},
        )
        # The stale-fingerprint payload must not leak into the new file.
        assert persistence.load_cache_payload(path, "k", "new-fingerprint") == {
            "b": 2
        }
        assert persistence.load_cache_payload(path, "k", "old-fingerprint") is None

    def test_merge_hook_unions_payloads(self, tmp_path):
        path = tmp_path / "cache.bin"
        persistence.save_cache_payload(path, "k", "f", {"a": 1})
        persistence.save_cache_payload(
            path, "k", "f", {"b": 2}, merge=lambda old, new: {**old, **new}
        )
        assert persistence.load_cache_payload(path, "k", "f") == {"a": 1, "b": 2}


def _worker_save(cache_dir: str, queries: list[str], rounds: int) -> None:
    """Subprocess body: repeatedly warm a private engine and merge-save."""
    engine = _make_engine()
    path = os.path.join(cache_dir, "search_results.cache")
    for round_index in range(rounds):
        engine.search_many(queries, k=5)
        assert engine.save_results_cache(path) is True
        # Interleave with the other workers: also load, as a worker
        # warm-starting mid-run would.
        engine.load_results_cache(path)


class TestMultiProcessSharing:
    def test_interleaved_processes_lose_no_entries(self, tmp_path):
        # Three real processes, disjoint query sets, several save/load
        # rounds each, all against one cache directory.
        shards = [_NAMES[0:4], _NAMES[4:8], _NAMES[8:12]]
        context = multiprocessing.get_context()
        processes = [
            context.Process(target=_worker_save, args=(str(tmp_path), shard, 3))
            for shard in shards
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0

        # The surviving file is uncorrupted and holds the union: every
        # worker's signatures are present (merge-on-save never clobbered).
        fresh = _make_engine()
        assert fresh.load_results_cache(tmp_path / "search_results.cache") is True
        reference = _make_engine()
        reference.search_many(_NAMES, k=5)
        assert set(reference._results_cache) <= set(fresh._results_cache)
        # ... and the merged entries are the same ranked lists a single
        # process would have computed.
        for signature, results in reference._results_cache.items():
            assert fresh._results_cache[signature] == results


class TestLockTimeout:
    @pytest.fixture()
    def held_lock(self, tmp_path):
        """An exclusively-held advisory lock on a cache file's sidecar."""
        path = tmp_path / "cache.bin"
        persistence.save_cache_payload(path, "k", "f", {"a": 1})
        fd = os.open(persistence.lock_path_for(path), os.O_RDWR | os.O_CREAT)
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            yield path
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def test_load_cold_starts_on_lock_timeout(self, held_lock):
        assert (
            persistence.load_cache_payload(held_lock, "k", "f", lock_timeout=0.05)
            is None
        )

    def test_save_skips_on_lock_timeout(self, held_lock):
        assert (
            persistence.save_cache_payload(
                held_lock, "k", "f", {"b": 2}, lock_timeout=0.05
            )
            is False
        )
        # The skipped save wrote nothing: no temp files appeared.
        assert not list(held_lock.parent.glob("*.tmp.*"))

    def test_engine_load_survives_held_lock(self, tmp_path):
        # End-to-end: a stuck lock means the engine cold-starts, never
        # crashes or hangs.
        engine = _make_engine()
        engine.search_many(_NAMES[:2], k=5)
        path = tmp_path / "search_results.cache"
        assert engine.save_results_cache(path) is True
        fd = os.open(persistence.lock_path_for(path), os.O_RDWR | os.O_CREAT)
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            fresh = _make_engine()
            assert (
                persistence.load_cache_payload(
                    path,
                    "search-results",
                    fresh.cache_fingerprint(),
                    lock_timeout=0.05,
                )
                is None
            )
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def test_released_lock_restores_service(self, tmp_path):
        path = tmp_path / "cache.bin"
        persistence.save_cache_payload(path, "k", "f", {"a": 1})
        assert persistence.load_cache_payload(path, "k", "f") == {"a": 1}


_STORE_KIND = "chaos-cache"
_STORE_FINGERPRINT = ("chaos", 1)


def _open_store(store_dir, fingerprint=_STORE_FINGERPRINT):
    return persistence.ShardedDiskCacheStore(
        store_dir, _STORE_KIND, fingerprint=fingerprint, n_buckets=8
    )


def _store_reader(store_dir: str, n_keys: int, rounds: int) -> None:
    """Subprocess body: reopen the store and probe every key, repeatedly,
    while the parent merge-compacts underneath.  A key is either absent
    (not yet flushed / already invalidated) or carries its one true
    value -- anything else is corruption."""
    from pathlib import Path

    for _ in range(rounds):
        store = _open_store(Path(store_dir))
        for index in range(n_keys):
            value = store.get(f"key-{index}")
            assert value is None or value == f"value-{index}", value


def _store_writer_forever(store_dir: str) -> None:
    """Subprocess body: append forever (the parent SIGKILLs us mid-run)."""
    from pathlib import Path

    store = _open_store(Path(store_dir))
    index = 0
    while True:
        store.put(f"doomed-{index}", "x" * 512)
        store.flush()
        index += 1


class TestSharedStoreChaos:
    def test_readers_race_merge_compaction(self, tmp_path):
        store_dir = tmp_path / "chaos.cachestore"
        store = _open_store(store_dir)
        n_keys = 48
        for index in range(n_keys):
            store.put(f"key-{index}", f"value-{index}")
        store.flush()

        context = multiprocessing.get_context()
        readers = [
            context.Process(
                target=_store_reader, args=(str(store_dir), n_keys, 6)
            )
            for _ in range(3)
        ]
        for reader in readers:
            reader.start()
        # Merge-compact repeatedly while the readers run: each round
        # appends a fresh delta and folds it into the buckets.
        for round_index in range(5):
            grower = _open_store(store_dir)
            grower.put(f"round-{round_index}", f"value-{round_index}")
            grower.flush()
            assert grower.merge() is not None
        for reader in readers:
            reader.join(timeout=60)
            assert reader.exitcode == 0

        # Nothing was lost to the races: every key (and every round's
        # delta) survives in the compacted store.
        survivor = _open_store(store_dir)
        for index in range(n_keys):
            assert survivor.get(f"key-{index}") == f"value-{index}"
        for round_index in range(5):
            assert survivor.get(f"round-{round_index}") == f"value-{round_index}"

    def test_writer_sigkilled_mid_append(self, tmp_path):
        store_dir = tmp_path / "chaos.cachestore"
        seeded = _open_store(store_dir)
        seeded.put("survivor", "still-here")
        seeded.flush()
        assert seeded.merge() == 1

        context = multiprocessing.get_context()
        writer = context.Process(
            target=_store_writer_forever, args=(str(store_dir),)
        )
        writer.start()
        # Let it append for a moment, then kill it without ceremony --
        # the moral equivalent of an OOM kill mid-write.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            delta = store_dir / "delta.log"
            if delta.exists() and delta.stat().st_size > 4096:
                break
            time.sleep(0.01)
        os.kill(writer.pid, signal.SIGKILL)
        writer.join(timeout=30)
        assert writer.exitcode == -signal.SIGKILL

        # The store must open -- at worst the torn tail starts cold --
        # and the compacted entry written before the chaos is intact.
        survivor = _open_store(store_dir)
        assert survivor.get("survivor") == "still-here"
        # Appending and compacting on top of the tear works: the torn
        # tail is trimmed, not tripped over.
        survivor.put("after-the-crash", "fine")
        assert survivor.flush() > 0
        assert survivor.merge() >= 1
        assert _open_store(store_dir).get("after-the-crash") == "fine"

    def test_foreign_fingerprint_invalidates_store(self, tmp_path):
        store_dir = tmp_path / "chaos.cachestore"
        store = _open_store(store_dir)
        store.put("key-0", "value-0")
        store.flush()
        store.merge()
        foreign = _open_store(store_dir, fingerprint=("chaos", 2))
        assert not foreign.has_entries()
        assert foreign.get("key-0") is None
        # The first flush under the new fingerprint resets the layout;
        # the old world's entries do not leak into the new one.
        foreign.put("key-0", "new-value")
        foreign.flush()
        assert _open_store(
            store_dir, fingerprint=("chaos", 2)
        ).get("key-0") == "new-value"
        assert not _open_store(store_dir).has_entries()


class TestTempFileHygiene:
    def test_failed_dump_leaks_no_temp_file(self, tmp_path):
        # Unpicklable payloads (like lambdas) make pickle.dump raise; the
        # temp file must be cleaned up and no partial cache left behind.
        path = tmp_path / "cache.bin"
        with pytest.raises(Exception):
            persistence.save_cache_payload(path, "k", "f", lambda: None)
        assert not list(tmp_path.glob("*.tmp.*"))
        assert not path.exists()

    def test_failed_dump_preserves_existing_file(self, tmp_path):
        path = tmp_path / "cache.bin"
        persistence.save_cache_payload(path, "k", "f", {"a": 1})
        with pytest.raises(Exception):
            persistence.save_cache_payload(path, "k", "f", lambda: None)
        assert not list(tmp_path.glob("*.tmp.*"))
        assert persistence.load_cache_payload(path, "k", "f") == {"a": 1}
