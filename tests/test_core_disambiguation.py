"""Tests for toponym disambiguation (Section 5.2.2, Figure 7)."""

import pytest

from repro.clock import VirtualClock
from repro.core.config import AnnotatorConfig
from repro.core.disambiguation import SpatialContextExtractor, ToponymDisambiguator
from repro.geo.geocoder import Geocoder
from repro.synth.geography import build_gazetteer
from repro.tables.model import Column, ColumnType, Table


@pytest.fixture(scope="module")
def geocoder():
    return Geocoder(build_gazetteer(), clock=VirtualClock())


@pytest.fixture(scope="module")
def figure7_interpretations(geocoder):
    return {
        (12, 1): geocoder.geocode("1600 Pennsylvania Ave"),
        (12, 2): geocoder.geocode("Washington"),
        (13, 1): geocoder.geocode("Wofford Ln"),
        (13, 2): geocoder.geocode("College Park"),
        (20, 1): geocoder.geocode("Clarksville St"),
        (20, 2): geocoder.geocode("Paris"),
    }


class TestFigure7:
    def test_paper_outcome_reproduced(self, figure7_interpretations):
        outcome = ToponymDisambiguator().resolve(figure7_interpretations)
        chosen = {cell: loc.full_name for cell, loc in outcome.chosen.items()}
        assert "Washington, District of Columbia" in chosen[(12, 1)]
        assert "Washington, District of Columbia" in chosen[(12, 2)]
        assert "College Park, Maryland" in chosen[(13, 1)]
        assert "College Park, Maryland" in chosen[(13, 2)]
        assert "Paris, Texas" in chosen[(20, 1)]
        assert "Paris, Texas" in chosen[(20, 2)]

    def test_scores_normalised_per_cell(self, figure7_interpretations):
        outcome = ToponymDisambiguator().resolve(figure7_interpretations)
        for cell, scores in outcome.scores.items():
            assert sum(scores.values()) == pytest.approx(1.0)

    def test_winner_scores_dominate(self, figure7_interpretations):
        outcome = ToponymDisambiguator().resolve(figure7_interpretations)
        for cell, location in outcome.chosen.items():
            scores = outcome.scores[cell]
            assert scores[location.full_name] == max(scores.values())


class TestResolveEdgeCases:
    def test_empty_input(self):
        outcome = ToponymDisambiguator().resolve({})
        assert outcome.chosen == {}

    def test_single_unambiguous_cell(self, geocoder):
        outcome = ToponymDisambiguator().resolve(
            {(0, 0): geocoder.geocode("Paris, Texas")}
        )
        assert outcome.chosen[(0, 0)].container.name == "Texas"

    def test_isolated_ambiguous_cell_gets_deterministic_pick(self, geocoder):
        # No votes at all: scores stay uniform, tie broken by seeded RNG.
        first = ToponymDisambiguator(AnnotatorConfig(seed=13)).resolve(
            {(0, 0): geocoder.geocode("Paris")}
        )
        second = ToponymDisambiguator(AnnotatorConfig(seed=13)).resolve(
            {(0, 0): geocoder.geocode("Paris")}
        )
        assert first.chosen[(0, 0)] == second.chosen[(0, 0)]

    def test_cells_with_no_interpretations_skipped(self, geocoder):
        outcome = ToponymDisambiguator().resolve({(0, 0): []})
        assert outcome.chosen == {}

    def test_same_row_voting(self, geocoder):
        # Unambiguous city in the same row resolves the street.
        outcome = ToponymDisambiguator().resolve({
            (5, 0): geocoder.geocode("Pennsylvania Ave"),
            (5, 1): geocoder.geocode("Baltimore"),
        })
        assert outcome.chosen[(5, 0)].container.name == "Baltimore"

    def test_same_column_voting(self, geocoder):
        # Unambiguous addresses in a column pull the ambiguous one to the
        # city their containers share.
        outcome = ToponymDisambiguator().resolve({
            (0, 0): geocoder.geocode("Main Street, Austin"),
            (1, 0): geocoder.geocode("Oak Avenue, Austin"),
            (2, 0): geocoder.geocode("Elm Street"),  # 20 candidates
        })
        assert outcome.chosen[(2, 0)].container.name == "Austin"


class TestSpatialContextExtractor:
    def _table(self):
        return Table(
            name="t",
            columns=[
                Column("Name", ColumnType.TEXT),
                Column("Address", ColumnType.LOCATION),
            ],
            rows=[
                ["Melisse", "12 Main Street, Santa Monica"],
                ["Chez Paul", "40 Oak Avenue, Lyon"],
                ["Mystery", ""],
            ],
        )

    def test_row_contexts_extracted(self, geocoder):
        extractor = SpatialContextExtractor(geocoder)
        contexts = extractor.row_contexts(self._table())
        assert contexts[0] == "Santa Monica"
        assert contexts[1] == "Lyon"
        assert 2 not in contexts  # empty cell -> no context

    def test_spatial_columns_by_gft_type(self, geocoder):
        extractor = SpatialContextExtractor(geocoder)
        assert extractor.spatial_columns(self._table()) == [1]

    def test_header_fallback_without_gft_types(self, geocoder):
        config = AnnotatorConfig(use_gft_column_types=False)
        extractor = SpatialContextExtractor(geocoder, config)
        table = Table(
            name="t",
            columns=[Column("Name"), Column("City")],
            rows=[["Louvre", "Paris"]],
        )
        assert extractor.spatial_columns(table) == [1]

    def test_no_spatial_columns_no_contexts(self, geocoder):
        extractor = SpatialContextExtractor(geocoder)
        table = Table(name="t", columns=[Column("Name")], rows=[["X"]])
        assert extractor.row_contexts(table) == {}

    def test_geocode_cache_one_call_per_distinct_value(self):
        clock = VirtualClock()
        geocoder = Geocoder(build_gazetteer(), clock=clock)
        extractor = SpatialContextExtractor(geocoder)
        table = Table(
            name="t",
            columns=[Column("Name"), Column("City", ColumnType.LOCATION)],
            rows=[["A", "Lyon"], ["B", "Lyon"], ["C", "Genoa"]],
        )
        extractor.row_contexts(table)
        assert clock.n_charges == 2  # Lyon once, Genoa once
