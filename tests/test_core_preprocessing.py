"""Tests for pre-processing filters (Section 5.1)."""

import pytest

from repro.core.config import AnnotatorConfig
from repro.core.preprocessing import (
    Preprocessor,
    looks_like_coordinates,
    looks_like_email,
    looks_like_number,
    looks_like_phone,
    looks_like_url,
)
from repro.tables.model import Column, ColumnType, Table


class TestDetectors:
    @pytest.mark.parametrize("value", [
        "http://melisse.com", "https://www.louvre.fr/en", "www.example.org/path",
    ])
    def test_urls(self, value):
        assert looks_like_url(value)

    def test_plain_word_not_url(self):
        assert not looks_like_url("Melisse")

    @pytest.mark.parametrize("value", ["info@melisse.com", "a.b+c@x-y.co.uk"])
    def test_emails(self, value):
        assert looks_like_email(value)

    def test_sentence_not_email(self):
        assert not looks_like_email("contact us at melisse")

    @pytest.mark.parametrize("value", ["42", "-3.5", "1,200", "99%", "+7"])
    def test_numbers(self, value):
        assert looks_like_number(value)

    def test_address_not_number(self):
        assert not looks_like_number("1104 Wilshire Blvd")

    @pytest.mark.parametrize("value", [
        "34.0195, -118.4912", "48.8606;2.3376", "-12.5, 130.8",
    ])
    def test_coordinates(self, value):
        assert looks_like_coordinates(value)

    @pytest.mark.parametrize("value", [
        "(310) 395-0881", "+33 1 40 20 53 17", "310-395-0881", "310.395.0881",
    ])
    def test_phones(self, value):
        assert looks_like_phone(value)

    def test_short_number_not_phone(self):
        assert not looks_like_phone("42")

    def test_name_with_digits_not_phone(self):
        assert not looks_like_phone("Studio 54 Club")


@pytest.fixture()
def table():
    return Table(
        name="t",
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Address", ColumnType.LOCATION),
            Column("Phone", ColumnType.TEXT),
            Column("Opened", ColumnType.DATE),
            Column("Notes", ColumnType.TEXT),
        ],
        rows=[
            ["Melisse", "1104 Wilshire Blvd", "(310) 395-0881", "1999-06-01",
             "a very long verbose description that goes on and on for many words"],
            ["Louvre", "Rue de Rivoli, Paris", "+33 1 40 20 53 17", "1793-08-10",
             "short note"],
        ],
    )


class TestPreprocessor:
    def test_candidate_cells_keep_names_and_short_notes(self, table):
        candidates = Preprocessor().candidate_cells(table)
        values = {c.value for c in candidates}
        assert values == {"Melisse", "Louvre", "short note"}

    def test_gft_location_column_skipped(self, table):
        pre = Preprocessor()
        assert pre.column_exclusion_reason(table, 1) == "gft-type-location"
        assert pre.column_exclusion_reason(table, 0) is None

    def test_gft_types_can_be_disabled(self, table):
        config = AnnotatorConfig(use_gft_column_types=False)
        pre = Preprocessor(config)
        assert pre.column_exclusion_reason(table, 1) is None
        # The address cell is then kept (it is not phone/url/number shaped).
        values = {c.value for c in pre.candidate_cells(table)}
        assert "1104 Wilshire Blvd" in values

    def test_exclusion_reasons(self):
        pre = Preprocessor()
        assert pre.exclusion_reason("") == "empty"
        assert pre.exclusion_reason("https://x.com") == "url"
        assert pre.exclusion_reason("a@b.com") == "email"
        assert pre.exclusion_reason("12.5, -8.1") == "coordinates"
        assert pre.exclusion_reason("1234") == "number"
        assert pre.exclusion_reason("(310) 395-0881") == "phone"
        assert pre.exclusion_reason("Melisse") is None

    def test_long_value_limit_configurable(self):
        text = "one two three four five"
        strict = Preprocessor(AnnotatorConfig(long_value_token_limit=3))
        lax = Preprocessor(AnnotatorConfig(long_value_token_limit=10))
        assert strict.exclusion_reason(text) == "long-value"
        assert lax.exclusion_reason(text) is None

    def test_exclusion_summary_accounts_every_cell(self, table):
        summary = Preprocessor().exclusion_summary(table)
        assert sum(summary.values()) == table.n_rows * table.n_columns
        assert summary["kept"] == 3
        assert summary["gft-type-location"] == 2
        assert summary["gft-type-date"] == 2
        assert summary["phone"] == 2
        assert summary["long-value"] == 1


class TestConfigValidation:
    def test_bad_top_k(self):
        with pytest.raises(ValueError):
            AnnotatorConfig(top_k=0)

    def test_bad_majority_fraction(self):
        with pytest.raises(ValueError):
            AnnotatorConfig(majority_fraction=1.0)

    def test_bad_token_limit(self):
        with pytest.raises(ValueError):
            AnnotatorConfig(long_value_token_limit=0)

    def test_majority_count(self):
        assert AnnotatorConfig(top_k=10).majority_count == 5.0
        assert AnnotatorConfig(top_k=10, majority_fraction=0.3).majority_count == 3.0
