"""Smoke test: every script in ``examples/`` runs to completion.

Examples are the first code a reader copies, so each one is executed as a
real subprocess -- its own interpreter, no shared in-process world caches
-- under the small world configuration every script defaults to.  A script
that raises, hangs or prints nothing fails the suite (and the CI docs
job, which runs exactly this file).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 6, "examples/ lost scripts"
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "corpus_annotation.py" in names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited with {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
