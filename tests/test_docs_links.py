"""Documentation link checker: README.md and docs/ stay navigable.

Every relative markdown link in the top-level documents must point at a
file (or directory) that exists in the repository.  External ``http(s)``
links are recorded but never fetched -- this suite runs without network
access, in CI's docs job included.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _documents() -> list[Path]:
    documents = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    documents.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return [path for path in documents if path.exists()]


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # intra-document anchor
            continue
        links.append(target.split("#", 1)[0])
    return links


def test_required_documents_exist():
    assert (REPO_ROOT / "README.md").exists(), "README.md is missing"
    assert (REPO_ROOT / "docs" / "architecture.md").exists(), (
        "docs/architecture.md is missing"
    )


@pytest.mark.parametrize(
    "document", _documents(), ids=lambda path: str(path.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(document):
    broken = []
    for link in _relative_links(document):
        target = (document.parent / link).resolve()
        if not target.exists():
            broken.append(link)
    assert not broken, f"broken links in {document.name}: {broken}"


def test_docs_are_cross_linked():
    # The README must lead readers to the architecture document, and the
    # ROADMAP must point at its relocated performance section.
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/architecture.md" in readme
    roadmap = (REPO_ROOT / "ROADMAP.md").read_text()
    assert "docs/architecture.md" in roadmap
