"""Cross-cutting property-based tests (Hypothesis).

Invariants that must hold for *any* input, not just the fixtures used
elsewhere: score bounds, partition properties, monotonicity, determinism
and round-trips across module boundaries.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.metrics import f_measure
from repro.core.clustering import cluster_snippets, cosine_similarity
from repro.core.parallel import TableSlice, chunk_tables, slice_table, table_cost
from repro.core.postprocessing import column_scores
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.kb.catalogue import normalize_name
from repro.synth.rng import derive
from repro.tables.io import table_from_csv, table_from_json, table_to_csv, table_to_json
from repro.tables.model import Column, Table
from repro.text.pipeline import TextPipeline
from repro.text.tokenization import tokenize
from repro.web.snippets import extract_snippet

# -- strategies ---------------------------------------------------------------------

_words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=8,
)
_texts = st.lists(_words, min_size=0, max_size=30).map(" ".join)


# -- text ---------------------------------------------------------------------------


@given(_texts, st.integers(min_value=1, max_value=30))
def test_snippet_never_exceeds_max_words(body, max_words):
    snippet = extract_snippet(body, "query", max_words=max_words)
    words = [w for w in snippet.split() if w != "..."]
    assert len(words) <= max_words


@given(_texts)
def test_snippet_words_come_from_body(body):
    snippet = extract_snippet(body, "anything", max_words=10)
    body_words = set(body.split())
    for word in snippet.split():
        if word != "...":
            assert word in body_words


@given(_texts)
def test_pipeline_tokens_subset_of_raw_token_stems(text):
    from repro.text.porter import stem

    raw_stems = {stem(t) for t in tokenize(text)}
    for token in TextPipeline().tokens(text):
        assert token in raw_stems


@given(_words)
def test_normalize_name_idempotent(name):
    once = normalize_name(name)
    assert normalize_name(once) == once


# -- scores -------------------------------------------------------------------------


@given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_f_measure_bounded_by_min_and_max(p, r):
    f = f_measure(p, r)
    assert 0.0 <= f <= 1.0
    assert f <= max(p, r) + 1e-12
    if p > 0 and r > 0:
        assert f >= min(p, r) * 2 * max(p, r) / (p + r) - 1e-12


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=12),
    st.integers(min_value=1, max_value=5),
)
def test_eq2_repetition_damping_monotone(scores, repeats):
    """A column of repeated values never outscores the same column with
    distinct values at equal per-cell scores."""
    n = len(scores)
    distinct_table = Table(
        name="d", columns=[Column("A")], rows=[[f"v{i}"] for i in range(n)]
    )
    repeated_table = Table(
        name="r", columns=[Column("A")],
        rows=[[f"v{i % max(1, n // repeats)}"] for i in range(n)],
    )
    def annotations(table):
        return [
            CellAnnotation(table.name, i, 0, "t", score)
            for i, score in enumerate(scores)
        ]
    distinct_score = column_scores(distinct_table, annotations(distinct_table)).get(0, 0.0)
    repeated_score = column_scores(repeated_table, annotations(repeated_table)).get(0, 0.0)
    assert repeated_score <= distinct_score + 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=10))
def test_eq2_score_non_negative_and_bounded(scores):
    table = Table(
        name="t", columns=[Column("A")],
        rows=[[f"v{i}"] for i in range(len(scores))],
    )
    cells = [
        CellAnnotation("t", i, 0, "x", score) for i, score in enumerate(scores)
    ]
    total = column_scores(table, cells)[0]
    assert 0.0 <= total <= len(scores) * math.log(2.0) + 1e-9


# -- clustering ------------------------------------------------------------------------


@given(st.lists(_texts, min_size=0, max_size=15))
def test_clusters_always_partition(snippets):
    clusters = cluster_snippets(snippets, threshold=0.3)
    flattened = sorted(i for cluster in clusters for i in cluster)
    assert flattened == list(range(len(snippets)))


@given(
    st.dictionaries(_words, st.floats(min_value=0.01, max_value=5.0), max_size=8),
    st.dictionaries(_words, st.floats(min_value=0.01, max_value=5.0), max_size=8),
)
def test_cosine_bounded_and_symmetric(a, b):
    similarity = cosine_similarity(a, b)
    assert -1e-9 <= similarity <= 1.0 + 1e-9
    assert math.isclose(
        similarity, cosine_similarity(b, a), rel_tol=1e-9, abs_tol=1e-9
    )


# -- tables ---------------------------------------------------------------------------


@given(
    st.lists(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=12,
            ),
            min_size=2, max_size=2,
        ),
        max_size=8,
    )
)
def test_table_io_roundtrips(rows):
    table = Table(name="t", columns=[Column("A"), Column("B")], rows=rows)
    assert table_from_csv(table_to_csv(table), name="t").rows == rows
    assert table_from_json(table_to_json(table)).rows == rows


# -- row-range splitting ---------------------------------------------------------------

_shapes = st.tuples(
    st.integers(min_value=1, max_value=40),  # rows
    st.integers(min_value=1, max_value=6),  # columns
)


def _make_table(name, n_rows, n_columns):
    return Table(
        name=name,
        columns=[Column(f"c{j}") for j in range(n_columns)],
        rows=[[f"{name}-r{i}-c{j}" for j in range(n_columns)] for i in range(n_rows)],
    )


@given(_shapes, st.integers(min_value=1, max_value=200))
def test_slice_table_partitions_rows_exactly(shape, budget):
    """Slices are contiguous half-open ranges covering every row once."""
    table = _make_table("t", *shape)
    slices = slice_table(table, 0, budget)
    assert slices[0].row_start == 0
    assert slices[-1].row_stop == table.n_rows
    for left, right in zip(slices, slices[1:]):
        assert left.row_stop == right.row_start
    reassembled = [row for s in slices for row in s.table.rows]
    assert reassembled == table.rows
    for s in slices:
        assert s.table.rows == table.rows[s.row_start : s.row_stop]
        assert s.table.name == table.name and s.table.columns == table.columns


@given(_shapes, st.integers(min_value=1, max_value=200))
def test_slice_table_costs_within_budget_or_one_row(shape, budget):
    """Each slice fits the budget unless a single row already exceeds it."""
    table = _make_table("t", *shape)
    for s in slice_table(table, 0, budget):
        cost = table_cost(s.table)
        assert cost <= budget or s.row_stop - s.row_start == 1


@given(
    st.lists(_shapes, min_size=0, max_size=8),
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=0, max_value=60),
)
def test_chunk_tables_partitions_corpus_exactly(shapes, chunk_budget, slice_budget):
    """No cell lost, none duplicated, order preserved -- with or without
    splitting enabled, whatever the budgets."""
    tables = [_make_table(f"t{i}", r, c) for i, (r, c) in enumerate(shapes)]
    chunks = chunk_tables(tables, chunk_budget, slice_budget)
    seen = []
    for chunk in chunks:
        for item in chunk:
            if isinstance(item, TableSlice):
                assert len(chunk) == 1  # slices travel alone
                seen.extend(
                    (item.table_index, row)
                    for row in range(item.row_start, item.row_stop)
                )
            else:
                index = int(item.name[1:])
                seen.extend((index, row) for row in range(item.n_rows))
    expected = [
        (i, row) for i, (r, _c) in enumerate(shapes) for row in range(r)
    ]
    assert seen == expected
    # Pure function of shapes and budgets: same input, same packing.
    assert chunks == chunk_tables(tables, chunk_budget, slice_budget)


@given(st.lists(_shapes, min_size=0, max_size=8), st.integers(min_value=1, max_value=60))
def test_chunk_tables_costs_within_budget(shapes, chunk_budget):
    """Without splitting, multi-table chunks stay within the budget; only a
    single table that alone exceeds it may overflow (it travels alone)."""
    tables = [_make_table(f"t{i}", r, c) for i, (r, c) in enumerate(shapes)]
    for chunk in chunk_tables(tables, chunk_budget):
        cost = sum(table_cost(t) for t in chunk)
        assert cost <= chunk_budget or len(chunk) == 1


@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=40),
    st.data(),
)
def test_sliced_annotations_reassemble_byte_identically(
    n_rows, n_columns, budget, data
):
    """Annotating each slice (rows shifted to absolute coordinates) and
    folding the parts through ``merge_table`` in slice order reproduces the
    unsliced table annotation exactly -- cells and degraded lists alike."""
    table = _make_table("t", n_rows, n_columns)
    whole = TableAnnotation(table_name="t")
    for i in range(n_rows):
        for j in range(n_columns):
            if data.draw(st.booleans()):
                whole.add(
                    CellAnnotation(
                        "t", i, j, "museum",
                        data.draw(st.floats(min_value=0.0, max_value=1.0)),
                        cell_value=table.rows[i][j],
                    )
                )
    run = AnnotationRun()
    for s in slice_table(table, 0, budget):
        part = TableAnnotation(table_name="t")
        part.cells = [c for c in whole.cells if s.row_start <= c.row < s.row_stop]
        run.merge_table(part)
    assert repr(run.tables["t"]) == repr(whole)


# -- rng -------------------------------------------------------------------------------


@settings(max_examples=30)
@given(st.integers(), st.lists(_words, min_size=1, max_size=4))
def test_derive_is_pure(seed, keys):
    assert derive(seed, *keys) == derive(seed, *keys)


# -- results ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=5),
            st.sampled_from(["museum", "hotel", "singer"]),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        max_size=25,
    )
)
def test_annotated_rows_consistent_with_cells(cells):
    annotation = TableAnnotation(table_name="t")
    for row, column, type_key, score in cells:
        annotation.add(CellAnnotation("t", row, column, type_key, score))
    for type_key in ("museum", "hotel", "singer"):
        rows = annotation.annotated_rows(type_key)
        expected = {r for r, _c, t, _s in cells if t == type_key}
        assert rows == expected
