"""Tests for the command-line entry point.

The CLI shares the in-process experiment-context cache, so running the
cheap experiments against the small world reuses the session's context.
"""

import pytest

from repro import cli


class TestArgumentParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["not-an-experiment"])

    def test_requires_at_least_one_experiment(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_unknown_schedule_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure7", "--small", "--schedule", "round-robin"])

    def test_negative_chunk_cost_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure7", "--small", "--chunk-cost", "-1"])

    def test_negative_max_slice_cost_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure7", "--small", "--max-slice-cost", "-1"])

    def test_splitting_flags_forwarded_to_runner(
        self, small_context, monkeypatch
    ):
        seen = {}

        def spy_runner(context, split_giant_tables=False, max_slice_cost=0):
            seen["split_giant_tables"] = split_giant_tables
            seen["max_slice_cost"] = max_slice_cost

            class _Result:
                def render(self):
                    return "ok"

            return _Result()

        monkeypatch.setitem(cli._EXPERIMENTS, "figure7", spy_runner)
        assert (
            cli.main(
                [
                    "figure7",
                    "--small",
                    "--split-giant-tables",
                    "--max-slice-cost",
                    "64",
                ]
            )
            == 0
        )
        assert seen == {"split_giant_tables": True, "max_slice_cost": 64}
        assert cli.main(["figure7", "--small"]) == 0
        assert seen == {"split_giant_tables": False, "max_slice_cost": 0}


class TestExecution:
    def test_figure7_small(self, capsys, small_context):
        exit_code = cli.main(["figure7", "--small"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "Paris, Texas, USA" in output

    def test_figure6_and_coverage_together(self, capsys, small_context):
        exit_code = cli.main(["figure6", "coverage", "--small"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "OVERALL" in output

    def test_table2_small(self, capsys, small_context):
        exit_code = cli.main(["table2", "--small"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "Simpson's episodes" in output


class TestGracefulInterrupt:
    def test_interrupt_returns_130_and_still_saves_caches(
        self, capsys, small_context, tmp_path, monkeypatch
    ):
        # Ctrl-C mid-experiment: the CLI must flush the engine cache it
        # accumulated so far and report the conventional 128+SIGINT code.
        def interrupted_runner(context):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._EXPERIMENTS, "figure7", interrupted_runner)
        cache_dir = tmp_path / "cache"
        exit_code = cli.main(
            ["figure7", "--small", "--cache-dir", str(cache_dir)]
        )
        assert exit_code == cli.SIGINT_EXIT_CODE == 130
        assert (cache_dir / "search_results.cache").exists()
        assert "interrupted" in capsys.readouterr().err


class TestServeArguments:
    def test_serve_requires_socket(self):
        with pytest.raises(SystemExit):
            cli.main(["serve"])

    def test_serve_rejects_negative_window(self):
        with pytest.raises(SystemExit):
            cli.main(
                ["serve", "--socket", "/tmp/x.sock", "--batch-window-ms", "-1"]
            )

    def test_serve_rejects_zero_workers(self):
        with pytest.raises(SystemExit):
            cli.main(["serve", "--socket", "/tmp/x.sock", "--workers", "0"])


class TestClientCommand:
    def test_annotate_requires_types(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "client",
                    "annotate",
                    "--socket",
                    str(tmp_path / "x.sock"),
                    "--cells",
                    "Louvre",
                ]
            )

    def test_annotate_requires_table_or_cells(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "client",
                    "annotate",
                    "--socket",
                    str(tmp_path / "x.sock"),
                    "--types",
                    "museum",
                ]
            )

    def test_unreachable_daemon_reports_error(self, capsys, tmp_path):
        exit_code = cli.main(
            ["client", "ping", "--socket", str(tmp_path / "nothing.sock")]
        )
        assert exit_code == 1
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_round_trip_against_live_daemon(self, capsys, tmp_path, monkeypatch):
        # serve + client end to end, in-process: a daemon over the small
        # world's annotator, driven by the client subcommand.
        pytest.importorskip("fcntl")
        from repro.service.daemon import AnnotationDaemon, ServiceConfig
        from repro import quickstart_world
        from repro.core.annotator import EntityAnnotator

        world, classifier = quickstart_world()
        annotator = EntityAnnotator(classifier, world.search_engine)
        socket_path = tmp_path / "svc.sock"
        with AnnotationDaemon(annotator, socket_path, ServiceConfig()):
            assert cli.main(["client", "ping", "--socket", str(socket_path)]) == 0
            output = capsys.readouterr().out
            assert '"version": 1' in output
            assert (
                cli.main(
                    [
                        "client",
                        "annotate",
                        "--socket",
                        str(socket_path),
                        "--cells",
                        "Louvre",
                        "--types",
                        "museum",
                    ]
                )
                == 0
            )
            assert "cells" in capsys.readouterr().out


class TestCacheDir:
    def test_cache_dir_saves_then_warm_starts(self, capsys, small_context, tmp_path):
        cache_dir = tmp_path / "repro-cache"
        assert cli.main(["figure6", "--small", "--cache-dir", str(cache_dir)]) == 0
        err = capsys.readouterr().err
        assert "cold" in err and "saved" in err
        assert (cache_dir / "search_results.cache").exists()

        # Second invocation over the same world starts warm.
        assert cli.main(["figure6", "--small", "--cache-dir", str(cache_dir)]) == 0
        assert "warm from" in capsys.readouterr().err
