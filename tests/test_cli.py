"""Tests for the command-line entry point.

The CLI shares the in-process experiment-context cache, so running the
cheap experiments against the small world reuses the session's context.
"""

import pytest

from repro import cli


class TestArgumentParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["not-an-experiment"])

    def test_requires_at_least_one_experiment(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_unknown_schedule_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure7", "--small", "--schedule", "round-robin"])

    def test_negative_chunk_cost_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure7", "--small", "--chunk-cost", "-1"])


class TestExecution:
    def test_figure7_small(self, capsys, small_context):
        exit_code = cli.main(["figure7", "--small"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "Paris, Texas, USA" in output

    def test_figure6_and_coverage_together(self, capsys, small_context):
        exit_code = cli.main(["figure6", "coverage", "--small"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "OVERALL" in output

    def test_table2_small(self, capsys, small_context):
        exit_code = cli.main(["table2", "--small"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "Simpson's episodes" in output


class TestCacheDir:
    def test_cache_dir_saves_then_warm_starts(self, capsys, small_context, tmp_path):
        cache_dir = tmp_path / "repro-cache"
        assert cli.main(["figure6", "--small", "--cache-dir", str(cache_dir)]) == 0
        err = capsys.readouterr().err
        assert "cold" in err and "saved" in err
        assert (cache_dir / "search_results.cache").exists()

        # Second invocation over the same world starts warm.
        assert cli.main(["figure6", "--small", "--cache-dir", str(cache_dir)]) == 0
        assert "warm from" in capsys.readouterr().err
