"""Tests for the geocoder stand-in."""

import pytest

from repro.clock import VirtualClock
from repro.geo.geocoder import Geocoder
from repro.geo.model import LocationKind
from repro.synth.geography import build_gazetteer


@pytest.fixture(scope="module")
def geocoder():
    return Geocoder(build_gazetteer(), clock=VirtualClock())


class TestStreetResolution:
    def test_partial_address_is_ambiguous(self, geocoder):
        results = geocoder.geocode("1600 Pennsylvania Ave")
        assert len(results) == 2
        cities = {r.container.name for r in results}
        assert cities == {"Washington", "Baltimore"}

    def test_city_context_disambiguates(self, geocoder):
        results = geocoder.geocode("1600 Pennsylvania Ave, Washington")
        assert len(results) == 1
        assert results[0].container.name == "Washington"

    def test_zip_code_stripped(self, geocoder):
        with_zip = geocoder.geocode("12 Main Street 78701")
        without = geocoder.geocode("12 Main Street")
        assert len(with_zip) == len(without) == 20

    def test_street_number_not_required(self, geocoder):
        assert geocoder.geocode("Wofford Ln")  # three interpretations
        assert len(geocoder.geocode("Wofford Ln")) == 3


class TestCityResolution:
    def test_bare_city_name(self, geocoder):
        results = geocoder.geocode("Paris")
        assert len(results) == 3
        assert all(r.kind is LocationKind.CITY for r in results)

    def test_state_context_filters(self, geocoder):
        results = geocoder.geocode("Paris, Texas")
        assert len(results) == 1
        assert results[0].container.name == "Texas"

    def test_country_context_filters(self, geocoder):
        results = geocoder.geocode("Paris, France")
        assert len(results) == 1
        assert results[0].container.container.name == "France"

    def test_resolve_city_helper(self, geocoder):
        results = geocoder.resolve_city("College Park")
        assert len(results) == 2

    def test_unknown_context_keeps_candidates(self, geocoder):
        # A context that matches nothing must not wipe out the candidates.
        results = geocoder.geocode("Paris, Wonderland")
        assert len(results) == 3


class TestFallbacks:
    def test_unknown_text_empty(self, geocoder):
        assert geocoder.geocode("completely unknown place") == []

    def test_empty_text(self, geocoder):
        assert geocoder.geocode("   ") == []

    def test_state_resolution(self, geocoder):
        results = geocoder.geocode("Texas")
        assert len(results) == 1
        assert results[0].kind is LocationKind.STATE

    def test_country_resolution(self, geocoder):
        results = geocoder.geocode("France")
        assert results[0].kind is LocationKind.COUNTRY


class TestLatency:
    def test_each_call_charges_clock(self):
        clock = VirtualClock()
        geocoder = Geocoder(build_gazetteer(), clock=clock, latency_seconds=0.2)
        geocoder.geocode("Paris")
        geocoder.geocode("Austin")
        assert clock.elapsed_seconds == pytest.approx(0.4)
        assert clock.n_charges == 2


class TestCityOf:
    def test_city_of_street(self, geocoder):
        street = geocoder.geocode("1600 Pennsylvania Ave, Washington")[0]
        assert geocoder.city_of(street).name == "Washington"

    def test_city_of_city_is_itself(self, geocoder):
        city = geocoder.geocode("Paris, Texas")[0]
        assert geocoder.city_of(city) is city

    def test_city_of_country_is_none(self, geocoder):
        country = geocoder.geocode("France")[0]
        assert geocoder.city_of(country) is None
