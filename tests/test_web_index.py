"""Tests for web pages, the inverted index and BM25 ranking."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.web.documents import WebPage
from repro.web.index import InvertedIndex
from repro.web.ranking import BM25Parameters, bm25_score_array, bm25_scores


def _page(url, title, body, language="en"):
    return WebPage(url=f"https://x.example/{url}", title=title, body=body,
                   language=language)


class TestWebPage:
    def test_requires_http_url(self):
        with pytest.raises(ValueError):
            WebPage(url="ftp://x", title="t", body="b")

    def test_requires_url(self):
        with pytest.raises(ValueError):
            WebPage(url="", title="t", body="b")

    def test_text_joins_title_and_body(self):
        page = _page("a", "Title", "Body")
        assert page.text == "Title\nBody"


class TestInvertedIndex:
    @pytest.fixture()
    def index(self):
        idx = InvertedIndex(title_boost=3.0)
        idx.add(_page("1", "Louvre Museum", "the louvre is a museum in paris"))
        idx.add(_page("2", "Melisse", "a restaurant in santa monica"))
        idx.add(_page("3", "Paris guide", "museums and restaurants of paris"))
        return idx

    def test_document_count(self, index):
        assert index.n_documents == 3

    def test_document_frequency(self, index):
        assert index.document_frequency("paris") == 2
        assert index.document_frequency("zzz") == 0

    def test_title_tokens_boosted(self, index):
        postings = {p.doc_id: p.term_frequency for p in index.postings("museum")}
        # doc 0 has 'museum' in title (boost 3) and once in body -> 4.
        assert postings[0] == 4.0

    def test_average_length_positive(self, index):
        assert index.average_length > 0

    def test_add_after_freeze_thaws(self, index):
        index.document_frequency("paris")  # forces freeze
        index.add(_page("4", "New", "paris paris"))
        assert index.document_frequency("paris") == 3

    def test_add_after_query_refreezes_only_touched_tokens(self, index):
        before_paris = index.posting_arrays("paris")
        before_museum = index.posting_arrays("museum")
        index.add(_page("4", "New", "paris again"))
        # 'paris' was touched by the add: its arrays are rebuilt lazily.
        after_paris = index.posting_arrays("paris")
        assert after_paris is not before_paris
        assert list(after_paris[0]) == [0, 2, 3]
        # 'museum' was not: its frozen arrays survive untouched.
        assert index.posting_arrays("museum") is before_museum

    def test_add_many_bulk_indexes(self):
        index = InvertedIndex()
        doc_ids = index.add_many(
            [_page("1", "A", "alpha beta"), _page("2", "B", "beta gamma")]
        )
        assert doc_ids == [0, 1]
        assert index.n_documents == 2
        assert index.document_frequency("beta") == 2

    def test_invalid_title_boost(self):
        with pytest.raises(ValueError):
            InvertedIndex(title_boost=0.5)

    def test_posting_arrays_match_postings(self, index):
        arrays = index.posting_arrays("paris")
        postings = index.postings("paris")
        assert list(arrays[0]) == [p.doc_id for p in postings]

    def test_vocabulary_size(self, index):
        assert index.vocabulary_size() > 5


class TestBM25:
    @pytest.fixture()
    def index(self):
        idx = InvertedIndex()
        idx.add(_page("1", "melisse restaurant", "melisse menu melisse chef"))
        idx.add(_page("2", "louvre", "museum paintings gallery"))
        idx.add(_page("3", "paris food", "menu wine melisse"))
        return idx

    def test_matching_docs_scored(self, index):
        scores = bm25_scores(index, ["melisse"])
        assert set(scores) == {0, 2}

    def test_higher_tf_scores_higher(self, index):
        scores = bm25_scores(index, ["melisse"])
        assert scores[0] > scores[2]

    def test_multi_token_accumulates(self, index):
        single = bm25_scores(index, ["menu"])
        double = bm25_scores(index, ["menu", "melisse"])
        assert double[0] > single[0]

    def test_no_match_empty(self, index):
        assert bm25_scores(index, ["zzz"]) == {}

    def test_empty_query_empty(self, index):
        assert bm25_scores(index, []) == {}

    def test_score_array_zeros_for_nonmatching(self, index):
        array = bm25_score_array(index, ["museum"])
        assert array[1] > 0
        assert array[0] == 0.0

    def test_scores_non_negative(self, index):
        array = bm25_score_array(index, ["melisse", "menu", "museum"])
        assert np.all(array >= 0)

    def test_empty_index(self):
        assert bm25_scores(InvertedIndex(), ["x"]) == {}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25Parameters(k1=-1.0)
        with pytest.raises(ValueError):
            BM25Parameters(b=1.5)

    def test_b_zero_removes_length_normalisation(self):
        idx = InvertedIndex(title_boost=1.0)
        idx.add(_page("1", "", "menu " * 2))
        idx.add(_page("2", "", "menu menu " + "filler " * 50))
        flat = bm25_scores(idx, ["menu"], BM25Parameters(b=0.0))
        assert flat[0] == pytest.approx(flat[1])


@given(st.lists(st.sampled_from(["menu", "wine", "chef", "museum"]),
                min_size=1, max_size=6))
def test_bm25_more_query_terms_never_lower_score(tokens):
    idx = InvertedIndex()
    idx.add(_page("1", "doc", "menu wine chef museum gallery"))
    partial = bm25_score_array(idx, tokens[:1])
    full = bm25_score_array(idx, tokens)
    assert full[0] >= partial[0] - 1e-12
