"""Tests for corpus persistence."""

import pytest

from repro.synth.corpus_io import (
    corpus_from_json,
    corpus_to_json,
    load_corpus,
    save_corpus,
)


class TestCorpusRoundtrip:
    def test_json_roundtrip_preserves_tables(self, gft_corpus):
        restored = corpus_from_json(corpus_to_json(gft_corpus))
        assert restored.name == gft_corpus.name
        assert len(restored.tables) == len(gft_corpus.tables)
        for original, parsed in zip(gft_corpus.tables, restored.tables):
            assert parsed.name == original.name
            assert parsed.columns == original.columns
            assert parsed.rows == original.rows

    def test_json_roundtrip_preserves_gold(self, gft_corpus):
        restored = corpus_from_json(corpus_to_json(gft_corpus))
        assert len(restored.gold) == len(gft_corpus.gold)
        for original, parsed in zip(
            gft_corpus.gold.references, restored.gold.references
        ):
            assert parsed == original

    def test_file_roundtrip(self, gft_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(gft_corpus, path)
        restored = load_corpus(path)
        assert restored.n_rows_total == gft_corpus.n_rows_total

    def test_missing_key_rejected(self):
        with pytest.raises(ValueError):
            corpus_from_json('{"name": "x", "tables": []}')

    def test_restored_corpus_evaluates_identically(self, gft_corpus, small_context):
        from repro.eval.evaluator import evaluate_annotations

        restored = corpus_from_json(corpus_to_json(gft_corpus))
        run = small_context.annotation_run(backend="svm", postprocess=True)
        original_eval = evaluate_annotations(run, gft_corpus.gold)
        restored_eval = evaluate_annotations(run, restored.gold)
        assert original_eval.micro_f1() == restored_eval.micro_f1()
