"""Tests for snippet extraction and the search-engine facade."""

import pytest

from repro.clock import VirtualClock
from repro.web.documents import WebPage
from repro.web.search import SearchEngine, SearchEngineUnavailable
from repro.web.snippets import extract_snippet


class TestExtractSnippet:
    def test_short_body_returned_whole(self):
        assert extract_snippet("just five words in body", "query") == (
            "just five words in body"
        )

    def test_window_centres_on_query_terms(self):
        body = " ".join(["filler"] * 30 + ["melisse", "restaurant"] + ["pad"] * 30)
        snippet = extract_snippet(body, "melisse", max_words=10)
        assert "melisse" in snippet

    def test_ellipsis_markers(self):
        body = " ".join(["a"] * 30 + ["target"] + ["b"] * 30)
        snippet = extract_snippet(body, "target", max_words=5)
        assert snippet.startswith("... ")
        assert snippet.endswith(" ...")

    def test_leading_window_fallback_when_no_match(self):
        body = " ".join(f"w{i}" for i in range(50))
        snippet = extract_snippet(body, "absent", max_words=8)
        assert snippet.startswith("w0 w1")

    def test_max_words_respected(self):
        body = " ".join(["x"] * 100)
        snippet = extract_snippet(body, "x", max_words=20)
        words = [w for w in snippet.split() if w != "..."]
        assert len(words) == 20

    def test_invalid_max_words(self):
        with pytest.raises(ValueError):
            extract_snippet("body", "q", max_words=0)


def _engine(**kwargs):
    engine = SearchEngine(clock=VirtualClock(), **kwargs)
    engine.add_pages([
        WebPage(url="https://x/melisse-0", title="Melisse - Official",
                body="melisse menu chef cuisine santa monica dining"),
        WebPage(url="https://x/melisse-1", title="Melisse | Guide",
                body="melisse reviews dining wine menu"),
        WebPage(url="https://x/label", title="Melisse Records",
                body="melisse jazz label vinyl roster"),
        WebPage(url="https://x/fr", title="Melisse", body="melisse cuisine",
                language="fr"),
        WebPage(url="https://x/noise", title="Weather", body="forecast rainfall"),
    ])
    return engine


class TestSearch:
    def test_returns_ranked_results(self):
        results = _engine().search("melisse", k=10)
        assert len(results) == 3  # french page filtered, noise unmatched
        assert all("melisse" in r.title.lower() for r in results)

    def test_k_limits_results(self):
        assert len(_engine().search("melisse", k=2)) == 2

    def test_english_only(self):
        urls = [r.url for r in _engine().search("melisse", k=10)]
        assert "https://x/fr" not in urls

    def test_city_context_boosts_entity_pages(self):
        results = _engine().search("melisse santa monica", k=1)
        assert results[0].url == "https://x/melisse-0"

    def test_no_match_empty(self):
        assert _engine().search("zebra", k=5) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            _engine().search("melisse", k=0)

    def test_stopwords_ignored_in_ranking(self):
        engine = _engine()
        with_stop = engine.search("the melisse", k=3)
        without = engine.search("melisse", k=3)
        assert [r.url for r in with_stop] == [r.url for r in without]

    def test_query_count_increments(self):
        engine = _engine()
        engine.search("melisse")
        engine.search("weather")
        assert engine.query_count == 2


class TestLatency:
    def test_clock_charged_per_query(self):
        engine = _engine(latency_seconds=0.3)
        engine.search("melisse")
        engine.search("nothing at all")
        assert engine.clock.elapsed_seconds == pytest.approx(0.6)


class TestFailureInjection:
    def test_unavailable_engine_raises(self):
        engine = _engine()
        engine.available = False
        with pytest.raises(SearchEngineUnavailable):
            engine.search("melisse")

    def test_unavailable_still_charges_latency(self):
        engine = _engine(latency_seconds=0.5)
        engine.available = False
        with pytest.raises(SearchEngineUnavailable):
            engine.search("melisse")
        assert engine.clock.elapsed_seconds == pytest.approx(0.5)

    def test_failure_rate_drops_some_requests(self):
        engine = _engine(failure_rate=0.5, seed=3)
        outcomes = []
        for _ in range(40):
            try:
                engine.search("melisse")
                outcomes.append(True)
            except SearchEngineUnavailable:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            SearchEngine(failure_rate=1.5)


class TestDeterminism:
    def test_same_query_same_results(self):
        engine = _engine()
        first = engine.search("melisse", k=5)
        second = engine.search("melisse", k=5)
        assert first == second


class TestSearchMany:
    def test_matches_per_query_search(self):
        batch_engine = _engine()
        single_engine = _engine()
        queries = ["melisse", "melisse santa monica", "weather", "zebra"]
        batched = batch_engine.search_many(queries, k=3)
        singles = [single_engine.search(query, k=3) for query in queries]
        assert batched == singles

    def test_duplicates_issued_once(self):
        engine = _engine(latency_seconds=0.3)
        results = engine.search_many(["melisse", "melisse", "weather"], k=2)
        assert engine.query_count == 2
        assert engine.clock.elapsed_seconds == pytest.approx(0.6)
        assert results[0] == results[1]

    def test_token_signature_shares_compute_but_not_charges(self):
        # "melisse #1" and "melisse #2" tokenise identically (digits are
        # dropped), so they must return identical results, yet each unique
        # query string is still a separate (charged) engine request.
        engine = _engine(latency_seconds=0.3)
        first, second = engine.search_many(["melisse #1", "melisse #2"], k=3)
        assert first == second
        assert engine.query_count == 2
        assert engine.clock.elapsed_seconds == pytest.approx(0.6)

    def test_unavailable_engine_yields_none_and_charges(self):
        engine = _engine(latency_seconds=0.5)
        engine.available = False
        results = engine.search_many(["melisse", "weather"], k=2)
        assert results == [None, None]
        assert engine.clock.elapsed_seconds == pytest.approx(1.0)

    def test_failure_rate_drops_individual_queries(self):
        engine = _engine(failure_rate=0.5, seed=3)
        results = engine.search_many(["melisse"] * 1 + ["weather"] * 1, k=2)
        # Same rng stream as per-query search: some of many requests drop.
        many = engine.search_many([f"melisse q{i}" for i in range(40)], k=2)
        assert any(r is None for r in many)
        assert any(r is not None for r in many)
        assert len(results) == 2

    def test_results_reflect_pages_added_after_a_batch(self):
        engine = _engine()
        before = engine.search_many(["melisse"], k=10)[0]
        engine.add_page(
            WebPage(
                url="https://x/melisse-new",
                title="Melisse Melisse Melisse",
                body="melisse melisse melisse melisse",
            )
        )
        after = engine.search_many(["melisse"], k=10)[0]
        assert len(after) == len(before) + 1
        assert after[0].url == "https://x/melisse-new"

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            _engine().search_many(["melisse"], k=0)

    def test_empty_batch(self):
        engine = _engine()
        assert engine.search_many([], k=3) == []
        assert engine.query_count == 0

    def test_caller_mutation_does_not_corrupt_cache(self):
        engine = _engine()
        first = engine.search_many(["melisse"], k=3)[0]
        first.clear()
        assert len(engine.search_many(["melisse"], k=3)[0]) == 3

    def test_parameter_change_invalidates_cached_rankings(self):
        from repro.web.ranking import BM25Parameters

        engine = _engine()
        engine.search_many(["melisse santa monica"], k=3)
        engine.parameters = BM25Parameters(k1=0.01, b=0.0)
        batched = engine.search_many(["melisse santa monica"], k=3)[0]
        fresh = engine.search("melisse santa monica", k=3)
        assert batched == fresh

    def test_reset_compute_caches_preserves_results_and_accounting(self):
        engine = _engine()
        before = engine.search_many(["melisse", "weather"], k=3)
        queries = engine.query_count
        engine.reset_compute_caches()
        assert engine.query_count == queries
        assert engine.search_many(["melisse", "weather"], k=3) == before
