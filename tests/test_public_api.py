"""Public-API smoke tests: every documented export exists and imports."""

import importlib

import pytest

_PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.classify",
    "repro.core",
    "repro.eval",
    "repro.geo",
    "repro.kb",
    "repro.rdfstore",
    "repro.service",
    "repro.synth",
    "repro.tables",
    "repro.text",
    "repro.web",
]


@pytest.mark.parametrize("package_name", _PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} must declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_declared():
    import repro

    assert repro.__version__ == "1.0.0"


def test_quickstart_world_small(small_context):
    # The one-call entry point advertised in the README; the session's
    # cached world is reused, only the classifier is (re)trained.
    from repro import quickstart_world

    world, classifier = quickstart_world(small=True)
    assert world.page_count > 0
    assert classifier.types_  # trained over the 12 types
    label = classifier.classify(
        "exhibition gallery collection curator artifacts heritage"
    )
    assert label == "museum"


def test_readme_quickstart_snippet_runs(small_context):
    from repro import AnnotatorConfig, Column, ColumnType, EntityAnnotator, Table
    from repro import quickstart_world

    world, classifier = quickstart_world(small=True)
    entity = world.table_entities("museum")[0]
    table = Table(
        name="my-pois",
        columns=[Column("Name", ColumnType.TEXT),
                 Column("City", ColumnType.LOCATION)],
        rows=[[entity.table_name, entity.city.name if entity.city else ""]],
    )
    annotator = EntityAnnotator(classifier, world.search_engine, AnnotatorConfig())
    annotation = annotator.annotate_table(table, ["museum", "restaurant"])
    assert all(cell.type_key in ("museum", "restaurant")
               for cell in annotation.cells)
