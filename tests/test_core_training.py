"""Tests for the Section 5.2.1 training-set construction."""

import pytest

from repro.classify.snippet import OTHER_LABEL
from repro.core.training import TrainingCorpusBuilder
from repro.synth.types import TYPE_SPECS, type_spec


@pytest.fixture(scope="module")
def builder(small_world):
    return TrainingCorpusBuilder(
        small_world.kb, small_world.search_engine, seed=13
    )


class TestPositiveSnippets:
    def test_snippets_collected_for_museum(self, builder, small_world):
        snippets = builder.positive_snippets(type_spec("museum"))
        n_entities = len(small_world.kb_entities("museum"))
        assert len(snippets) >= n_entities  # several snippets per entity

    def test_max_entities_cap(self, small_world):
        capped = TrainingCorpusBuilder(
            small_world.kb, small_world.search_engine,
            max_entities_per_type=3, snippets_per_entity=5, seed=13,
        )
        snippets = capped.positive_snippets(type_spec("museum"))
        assert len(snippets) <= 3 * 5

    def test_deterministic(self, builder):
        first = builder.positive_snippets(type_spec("mine"))
        second = builder.positive_snippets(type_spec("mine"))
        assert first == second


class TestBackgroundSnippets:
    def test_collects_noise(self, builder):
        snippets = builder.background_snippets()
        assert len(snippets) > 50

    def test_engine_outage_yields_empty(self, small_world):
        engine = small_world.search_engine
        builder = TrainingCorpusBuilder(small_world.kb, engine, seed=13)
        engine.available = False
        try:
            assert builder.positive_snippets(type_spec("museum")) == []
            assert builder.background_snippets() == []
        finally:
            engine.available = True


class TestBuildSplit:
    def test_paper_default_gamma_only(self, builder):
        train, test, stats = builder.build_split([type_spec("mine")])
        labels = set(train.labels) | set(test.labels)
        assert labels == {"mine"}

    def test_other_class_optional(self, builder):
        train, _test, _stats = builder.build_split(
            [type_spec("mine")], include_other=True
        )
        assert OTHER_LABEL in set(train.labels)

    def test_split_fractions(self, builder):
        train, test, _stats = builder.build_split([type_spec("mine")])
        total = len(train) + len(test)
        assert len(train) / total == pytest.approx(0.75, abs=0.03)

    def test_stats_match_dataset(self, builder):
        train, test, stats = builder.build_split([type_spec("mine")])
        assert stats.train_counts["mine"] == len(train)
        assert stats.test_counts["mine"] == len(test)

    def test_small_types_smaller_corpora(self, small_context):
        # Table 2's salient feature: Simpsons episodes and Mines corpora
        # are much smaller than the rest.
        stats = small_context.corpus_stats
        assert stats.train_counts["simpsons_episode"] < stats.train_counts["museum"]
        assert stats.train_counts["mine"] < stats.train_counts["museum"]

    def test_invalid_snippets_per_entity(self, small_world):
        with pytest.raises(ValueError):
            TrainingCorpusBuilder(
                small_world.kb, small_world.search_engine, snippets_per_entity=0
            )
