"""End-to-end integration tests: world -> training -> annotation -> eval -> RDF."""

import pytest

from repro.core import AnnotatorConfig, EntityAnnotator
from repro.core.annotation import SnippetCache
from repro.eval.evaluator import evaluate_annotations
from repro.rdfstore.extract import extract_pois
from repro.rdfstore.facets import FacetedBrowser
from repro.rdfstore.store import PoiStore
from repro.synth.types import TYPE_SPECS

ALL_KEYS = [spec.key for spec in TYPE_SPECS]


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def run(self, small_world, small_context):
        annotator = EntityAnnotator(
            small_context.classifiers["svm"],
            small_world.search_engine,
            AnnotatorConfig(),
            cache=SnippetCache(),
        )
        return annotator.annotate_tables(small_context.gft.tables, ALL_KEYS)

    def test_corpus_level_f_measure(self, run, small_context):
        result = evaluate_annotations(run, small_context.gft.gold)
        assert result.micro_f1() > 0.6

    def test_annotations_point_at_real_cells(self, run, small_context):
        for cell in run.all_cells():
            table = small_context.gft.table(cell.table_name)
            assert 0 <= cell.row < table.n_rows
            assert 0 <= cell.column < table.n_columns
            assert table.cell(cell.row, cell.column) == cell.cell_value

    def test_row_discovery_output(self, run, small_context):
        # The paper's primary output: which rows hold entities of a type.
        table = next(t for t in small_context.gft.tables
                     if t.name.startswith("gft-museum"))
        gold_rows = {
            ref.row for ref in small_context.gft.gold.of_table(table.name)
        }
        found_rows = run.table(table.name).annotated_rows("museum")
        assert found_rows <= set(range(table.n_rows))
        overlap = len(found_rows & gold_rows) / max(1, len(gold_rows))
        assert overlap > 0.5

    def test_rdf_extraction_closes_the_loop(self, run, small_context):
        store = PoiStore()
        poi_keys = [s.key for s in TYPE_SPECS if s.category == "poi"]
        for table in small_context.gft.tables:
            records = extract_pois(
                table, run.table(table.name), type_keys=poi_keys
            )
            store.add_all(records)
        assert len(store) > 20
        browser = FacetedBrowser(store)
        by_type = browser.facet_counts("type")
        assert set(by_type) <= set(poi_keys)
        # City facet populated from Location columns.
        assert browser.facet_counts("city")

    def test_unknown_entities_annotated(self, run, small_world, small_context):
        # The headline claim: entities absent from the catalogue still get
        # discovered and typed.
        unknown_names = {
            e.table_name
            for e in small_world.table_entities("museum")
            if not e.in_kb
        }
        annotated_unknown = [
            c for c in run.of_type("museum") if c.cell_value in unknown_names
        ]
        assert annotated_unknown, "no unknown museum was discovered"


class TestDeterminism:
    def test_same_world_same_annotations(self, small_world, small_context):
        annotator_a = EntityAnnotator(
            small_context.classifiers["svm"], small_world.search_engine
        )
        annotator_b = EntityAnnotator(
            small_context.classifiers["svm"], small_world.search_engine
        )
        table = small_context.gft.tables[0]
        first = annotator_a.annotate_table(table, ALL_KEYS)
        second = annotator_b.annotate_table(table, ALL_KEYS)
        assert first.cells == second.cells


class TestFailureInjection:
    def test_flaky_engine_loses_recall_not_crashes(self, small_world, small_context):
        engine = small_world.search_engine
        original_rate = engine.failure_rate
        annotator = EntityAnnotator(
            small_context.classifiers["svm"], engine, AnnotatorConfig()
        )
        table = small_context.gft.tables[0]
        baseline = annotator.annotate_table(table, ALL_KEYS)
        engine.failure_rate = 0.6
        try:
            flaky_annotator = EntityAnnotator(
                small_context.classifiers["svm"], engine, AnnotatorConfig()
            )
            flaky = flaky_annotator.annotate_table(table, ALL_KEYS)
        finally:
            engine.failure_rate = original_rate
        assert len(flaky.cells) <= len(baseline.cells)
        assert flaky_annotator.search_failures > 0
