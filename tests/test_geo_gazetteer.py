"""Tests for the gazetteer and addresses."""

import pytest

from repro.geo.addresses import Address
from repro.geo.gazetteer import Gazetteer, normalize_street_name
from repro.geo.model import LocationKind
from repro.synth.geography import build_gazetteer, home_cities


class TestStreetNormalization:
    def test_suffix_abbreviations_expand(self):
        assert normalize_street_name("Pennsylvania Ave.") == "pennsylvania avenue"
        assert normalize_street_name("Wofford Ln") == "wofford lane"
        assert normalize_street_name("Clarksville St") == "clarksville street"

    def test_full_suffix_untouched(self):
        assert normalize_street_name("Main Street") == "main street"


class TestGazetteer:
    @pytest.fixture()
    def gazetteer(self):
        g = Gazetteer()
        usa = g.add_country("USA")
        texas = g.add_state("Texas", usa)
        tennessee = g.add_state("Tennessee", usa)
        paris_tx = g.add_city("Paris", texas)
        g.add_city("Paris", tennessee)
        g.add_street("Clarksville Street", paris_tx)
        return g

    def test_country_lookup(self, gazetteer):
        assert gazetteer.find_country("usa").name == "USA"
        assert gazetteer.find_country("Mars") is None

    def test_ambiguous_city_lookup(self, gazetteer):
        cities = gazetteer.find_cities("Paris")
        assert len(cities) == 2
        assert {c.container.name for c in cities} == {"Texas", "Tennessee"}

    def test_street_lookup_with_abbreviation(self, gazetteer):
        assert len(gazetteer.find_streets("Clarksville St")) == 1

    def test_idempotent_registration(self, gazetteer):
        before = len(gazetteer)
        usa = gazetteer.find_country("USA")
        gazetteer.add_state("Texas", usa)
        assert len(gazetteer) == before

    def test_counts_by_kind(self, gazetteer):
        counts = gazetteer.counts()
        assert counts["country"] == 1
        assert counts["state"] == 2
        assert counts["city"] == 2
        assert counts["street"] == 1


class TestWorldGazetteer:
    @pytest.fixture(scope="class")
    def gazetteer(self):
        return build_gazetteer()

    def test_paper_city_ambiguities_planted(self, gazetteer):
        assert len(gazetteer.find_cities("Paris")) == 3
        assert len(gazetteer.find_cities("Washington")) == 2
        assert len(gazetteer.find_cities("College Park")) == 2

    def test_paper_street_ambiguities_planted(self, gazetteer):
        assert len(gazetteer.find_streets("Pennsylvania Avenue")) == 2
        assert len(gazetteer.find_streets("Wofford Lane")) == 3
        assert len(gazetteer.find_streets("Clarksville Street")) == 3

    def test_common_streets_in_every_home_city(self, gazetteer):
        assert len(gazetteer.find_streets("Main Street")) == 20

    def test_home_cities_unambiguous(self, gazetteer):
        for city in home_cities(gazetteer):
            assert len(gazetteer.find_cities(city.name)) == 1


class TestAddress:
    @pytest.fixture()
    def street(self):
        g = Gazetteer()
        usa = g.add_country("USA")
        state = g.add_state("California", usa)
        city = g.add_city("Santa Monica", state)
        return g.add_street("Wilshire Boulevard", city)

    def test_partial_form(self, street):
        assert Address(1104, street).partial() == "1104 Wilshire Boulevard"

    def test_with_city(self, street):
        assert Address(1104, street).with_city() == (
            "1104 Wilshire Boulevard, Santa Monica"
        )

    def test_full_form_with_zip(self, street):
        address = Address(1104, street, zip_code="90401")
        assert address.full() == (
            "1104 Wilshire Boulevard, Santa Monica, California, USA 90401"
        )

    def test_partial_with_zip(self, street):
        assert Address(7, street, zip_code="90401").partial_with_zip() == (
            "7 Wilshire Boulevard 90401"
        )

    def test_city_property(self, street):
        assert Address(1, street).city.name == "Santa Monica"

    def test_rejects_non_street(self, street):
        with pytest.raises(ValueError):
            Address(1, street.container)

    def test_rejects_bad_number(self, street):
        with pytest.raises(ValueError):
            Address(0, street)
