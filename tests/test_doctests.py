"""Run every docstring example in the library as a test.

Documentation that drifts from the code is worse than none: the examples
embedded in public docstrings (``>>>`` blocks) are executed here so they
stay truthful.
"""

import doctest

import pytest

import repro.classify.metrics
import repro.core.annotation
import repro.core.annotator
import repro.core.clustering
import repro.eval.reporting
import repro.geo.gazetteer
import repro.kb.catalogue
import repro.service.protocol
import repro.synth.rng
import repro.tables.model
import repro.tables.render
import repro.text.language
import repro.text.pipeline
import repro.text.porter
import repro.text.stopwords
import repro.text.tokenization
import repro.text.vectorizer
import repro.web.search

_MODULES = [
    repro.classify.metrics,
    repro.core.annotation,
    repro.core.annotator,
    repro.core.clustering,
    repro.eval.reporting,
    repro.geo.gazetteer,
    repro.kb.catalogue,
    repro.service.protocol,
    repro.synth.rng,
    repro.tables.model,
    repro.tables.render,
    repro.text.language,
    repro.text.pipeline,
    repro.text.porter,
    repro.text.stopwords,
    repro.text.tokenization,
    repro.text.vectorizer,
    repro.web.search,
]


@pytest.mark.parametrize("module", _MODULES, ids=lambda m: m.__name__)
def test_docstring_examples(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failures in {module.__name__}"
    )


def test_docstring_examples_exist_somewhere():
    total = sum(
        doctest.testmod(module, verbose=False).attempted for module in _MODULES
    )
    assert total >= 15, "expected a meaningful number of docstring examples"
