"""Tests for the extension experiments (on the reduced-scale world)."""

import pytest

from repro.eval import ablation, extensions


class TestHybridExperiment:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return extensions.run_hybrid(small_context)

    def test_quality_parity(self, result):
        assert abs(result.hybrid_micro_f - result.pure_micro_f) < 0.12

    def test_savings_positive(self, result):
        assert result.query_savings > 0.0
        assert result.catalogue_hits > 0

    def test_render(self, result):
        text = result.render()
        assert "hybrid" in text
        assert "queries saved" in text


class TestClusteringExperiment:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return extensions.run_clustering(small_context, max_entities=20)

    def test_counts_bounded(self, result):
        assert 0 <= result.plain_recovered <= result.n_ambiguous
        assert 0 <= result.clustered_recovered <= result.n_ambiguous

    def test_clustering_not_worse(self, result):
        assert result.clustered_recovered >= result.plain_recovered

    def test_render(self, result):
        assert "cluster" in result.render()


class TestGiulianoExperiment:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return extensions.run_giuliano(small_context)

    def test_classifier_wins_on_f(self, result):
        assert result.classifier_f >= result.similarity_f

    def test_similarity_loses_precision(self, result):
        assert result.similarity_precision <= result.classifier_precision

    def test_render(self, result):
        assert "similarity" in result.render()


class TestAblationFunctions:
    def test_repetition_ablation(self, small_context):
        result = ablation.run_repetition_ablation(small_context)
        assert result.mean_gain() >= -0.05
        assert set(result.with_factor) == set(result.without_factor)
        assert "1/o" in result.render()

    def test_topk_ablation_small_sweep(self, small_context):
        result = ablation.run_topk_ablation(
            small_context, top_ks=(10,), fractions=(0.5,),
        )
        assert (10, 0.5) in result.scores
        assert 0.0 <= result.f_of(10, 0.5) <= 1.0
        assert result.table_names
