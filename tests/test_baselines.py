"""Tests for the TIN, TIS and Limaye baselines."""

import pytest

from repro.baselines.limaye import LimayeAnnotator
from repro.baselines.type_in_name import TypeInNameAnnotator
from repro.baselines.type_in_snippet import TypeInSnippetAnnotator
from repro.core.annotation import SnippetCache
from repro.kb.catalogue import Catalogue
from repro.tables.model import Column, ColumnType, Table


def _table(rows, name="t"):
    return Table(
        name=name,
        columns=[Column("Name", ColumnType.TEXT), Column("City", ColumnType.TEXT)],
        rows=rows,
    )


class TestTypeInName:
    def test_matches_type_word_in_cell(self):
        annotator = TypeInNameAnnotator()
        table = _table([["Louvre Museum", "Paris"], ["Melisse", "Santa Monica"]])
        annotation = annotator.annotate_table(table, ["museum", "restaurant"])
        assert len(annotation.cells) == 1
        assert annotation.cells[0].type_key == "museum"
        assert annotation.cells[0].score == 1.0

    def test_plural_matches_stem(self):
        assert TypeInNameAnnotator.cell_matches("City Museums Guide", "museum")

    def test_substring_not_enough(self):
        # 'museum' inside another word must not match at token level.
        assert not TypeInNameAnnotator.cell_matches("Museumsinsel", "museum")

    def test_first_matching_type_wins(self):
        annotator = TypeInNameAnnotator()
        table = _table([["Museum Hotel", "Lyon"]])
        annotation = annotator.annotate_table(table, ["museum", "hotel"])
        assert [c.type_key for c in annotation.cells] == ["museum"]

    def test_no_search_engine_needed(self):
        annotator = TypeInNameAnnotator()
        run = annotator.annotate_tables([_table([["X School", "Y"]])], ["school"])
        assert len(run) == 1


class TestTypeInSnippet:
    def test_annotates_when_snippets_carry_type_word(self):
        # Build an engine where every page about "Grand Gallery" says
        # "museum": TIS must fire with score 1.0.
        from repro.clock import VirtualClock
        from repro.web.documents import WebPage
        from repro.web.search import SearchEngine

        engine = SearchEngine(clock=VirtualClock())
        for i in range(8):
            engine.add_page(WebPage(
                url=f"https://x/{i}", title="Grand Gallery",
                body="grand gallery is a museum with paintings and exhibits",
            ))
        annotator = TypeInSnippetAnnotator(engine, cache=SnippetCache())
        table = _table([["Grand Gallery", ""]])
        annotation = annotator.annotate_table(table, ["museum", "hotel"])
        assert len(annotation.cells) == 1
        assert annotation.cells[0].type_key == "museum"
        assert annotation.cells[0].score > 0.5

    def test_fires_on_some_world_cells(self, small_world):
        # Statistical check on the synthetic world: across school and
        # university entities (high type-word-in-page rates), TIS finds at
        # least one cell.
        annotator = TypeInSnippetAnnotator(
            small_world.search_engine, cache=SnippetCache()
        )
        entities = (
            small_world.table_entities("school")
            + small_world.table_entities("university")
        )
        table = _table([[e.table_name, ""] for e in entities], name="edu")
        annotation = annotator.annotate_table(table, ["school", "university"])
        assert len(annotation.cells) >= 1
        assert all(0.5 < c.score <= 1.0 for c in annotation.cells)

    def test_snippet_match_is_stem_tolerant(self):
        assert TypeInSnippetAnnotator.snippet_matches(
            "the finest museums of Europe", "museum"
        )

    def test_no_match_no_annotation(self, small_world):
        annotator = TypeInSnippetAnnotator(small_world.search_engine)
        table = _table([["zzz unknown zzz", ""]])
        annotation = annotator.annotate_table(table, ["museum"])
        assert len(annotation.cells) == 0

    def test_outage_degrades_gracefully(self, small_world):
        engine = small_world.search_engine
        annotator = TypeInSnippetAnnotator(engine)
        engine.available = False
        try:
            annotation = annotator.annotate_table(
                _table([["Louvre", ""]]), ["museum"]
            )
        finally:
            engine.available = True
        assert len(annotation.cells) == 0


class TestLimaye:
    @pytest.fixture()
    def catalogue(self):
        catalogue = Catalogue()
        catalogue.add("Louvre", "museum")
        catalogue.add("Orsay", "museum")
        catalogue.add("Melisse", "restaurant")
        catalogue.add("Ambiguous Hall", "museum")
        catalogue.add("Ambiguous Hall", "theatre")
        return catalogue

    def test_annotates_known_entities_only(self, catalogue):
        annotator = LimayeAnnotator(catalogue)
        table = _table([["Louvre", "Paris"], ["Unknown Gallery", "Rome"]])
        annotation = annotator.annotate_table(table, ["museum"])
        assert [c.cell_value for c in annotation.cells] == ["Louvre"]

    def test_column_majority_resolves_ambiguity(self, catalogue):
        annotator = LimayeAnnotator(catalogue)
        table = _table([
            ["Louvre", ""], ["Orsay", ""], ["Ambiguous Hall", ""],
        ])
        annotation = annotator.annotate_table(table, ["museum", "theatre"])
        assert all(c.type_key == "museum" for c in annotation.cells)
        assert len(annotation.cells) == 3

    def test_requested_types_filter(self, catalogue):
        annotator = LimayeAnnotator(catalogue)
        table = _table([["Melisse", ""]])
        annotation = annotator.annotate_table(table, ["museum"])
        assert len(annotation.cells) == 0

    def test_cannot_discover_unknown_entities(self, catalogue, small_world):
        # The paper's central criticism, as a test: entities outside the
        # catalogue are invisible to the Limaye-style baseline.
        unknown = [
            e for e in small_world.table_entities("museum") if not e.in_kb
        ][:5]
        annotator = LimayeAnnotator(small_world.catalogue)
        table = _table([[e.table_name, ""] for e in unknown], name="unknowns")
        annotation = annotator.annotate_table(table, ["museum"])
        assert len(annotation.cells) == 0
