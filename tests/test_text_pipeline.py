"""Tests for stopwords and the snippet feature pipeline."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.pipeline import TextPipeline
from repro.text.stopwords import ENGLISH_STOPWORDS, is_stopword, remove_stopwords


class TestStopwords:
    def test_common_function_words_are_stopwords(self):
        for word in ("the", "is", "a", "of", "and", "in"):
            assert is_stopword(word)

    def test_domain_words_are_not_stopwords(self):
        for word in ("museum", "restaurant", "street", "school"):
            assert not is_stopword(word)

    def test_remove_preserves_order(self):
        assert remove_stopwords(["the", "louvre", "is", "a", "museum"]) == [
            "louvre", "museum",
        ]

    def test_stopword_list_is_lowercase(self):
        assert all(word == word.lower() for word in ENGLISH_STOPWORDS)


class TestPipelineTokens:
    def test_full_pipeline(self):
        tokens = TextPipeline().tokens("The Museums of Paris are charming")
        assert tokens == ["museum", "pari", "charm"]

    def test_stopword_removal_can_be_disabled(self):
        pipeline = TextPipeline(remove_stopwords=False)
        assert "the" in pipeline.tokens("the museum")

    def test_stemming_can_be_disabled(self):
        pipeline = TextPipeline(apply_stemming=False)
        assert pipeline.tokens("museums galleries") == ["museums", "galleries"]


class TestPipelineFeatures:
    def test_normalised_frequencies_sum_to_one(self):
        features = TextPipeline().features("menu chef menu dining wine")
        assert features
        assert math.isclose(sum(features.values()), 1.0)

    def test_repeated_token_counts_proportionally(self):
        features = TextPipeline().features("menu menu wine")
        assert math.isclose(features["menu"], 2 / 3)
        assert math.isclose(features["wine"], 1 / 3)

    def test_empty_snippet_gives_empty_features(self):
        assert TextPipeline().features("") == {}

    def test_all_stopwords_gives_empty_features(self):
        assert TextPipeline().features("the of and is") == {}

    def test_counts_are_integers(self):
        counts = TextPipeline().counts("menu menu chef")
        assert counts["menu"] == 2
        assert counts["chef"] == 1


class TestTokenMemo:
    def test_tokens_and_counts_share_one_memo(self, monkeypatch):
        # Regression: tokens() used to bypass the per-token memo counts()
        # filled, re-running the stemmer on every call.
        import repro.text.pipeline as pipeline_module

        calls = []
        real_stem = pipeline_module.stem
        monkeypatch.setattr(
            pipeline_module,
            "stem",
            lambda token: calls.append(token) or real_stem(token),
        )
        pipeline = TextPipeline()
        text = "museums galleries museums"
        pipeline.counts(text)
        stems_after_counts = len(calls)
        assert stems_after_counts == 2  # once per *distinct* token
        pipeline.tokens(text)
        pipeline.tokens(text)
        assert len(calls) == stems_after_counts  # memo served every token

    def test_tokens_match_counts_mapping(self):
        from collections import Counter

        pipeline = TextPipeline()
        text = "The Museums of Paris are charming museums"
        assert Counter(pipeline.tokens(text)) == pipeline.counts(text)

    def test_empty_stem_is_memoised_not_recomputed(self, monkeypatch):
        # Regression: the old "" missing-sentinel collided with a token
        # legitimately mapping to the empty stem, recomputing it forever.
        import repro.text.pipeline as pipeline_module

        calls = []
        monkeypatch.setattr(
            pipeline_module, "stem", lambda token: calls.append(token) or ""
        )
        pipeline = TextPipeline()
        pipeline.counts("museum museum museum")
        pipeline.counts("museum")
        assert len(calls) == 1  # mapped once, memo hit ever after
        assert pipeline.tokens("museum") == [""]

    def test_memo_reset_when_flags_change(self):
        pipeline = TextPipeline()
        assert pipeline.tokens("museums") == ["museum"]
        pipeline.apply_stemming = False
        assert pipeline.tokens("museums") == ["museums"]


@given(st.text(max_size=150))
def test_features_sum_to_one_or_empty(text):
    features = TextPipeline().features(text)
    if features:
        assert math.isclose(sum(features.values()), 1.0)
        assert all(value > 0 for value in features.values())


@given(st.lists(st.sampled_from(["menu", "chef", "wine", "museum"]), max_size=30))
def test_feature_values_match_manual_count(tokens):
    text = " ".join(tokens)
    features = TextPipeline().features(text)
    total = len(tokens)
    for token in set(tokens):
        assert math.isclose(features[token], tokens.count(token) / total)
