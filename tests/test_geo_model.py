"""Tests for geographic locations and the relatedness predicate."""

import pytest

from repro.geo.model import GeoLocation, LocationKind, are_related


@pytest.fixture()
def usa():
    return GeoLocation("USA", LocationKind.COUNTRY)


@pytest.fixture()
def dc(usa):
    return GeoLocation("District of Columbia", LocationKind.STATE, usa)


@pytest.fixture()
def washington(dc):
    return GeoLocation("Washington", LocationKind.CITY, dc)


@pytest.fixture()
def pennsylvania_ave(washington):
    return GeoLocation("Pennsylvania Avenue", LocationKind.STREET, washington)


class TestConstruction:
    def test_country_cannot_have_container(self, usa):
        with pytest.raises(ValueError):
            GeoLocation("France", LocationKind.COUNTRY, usa)

    def test_state_needs_country(self):
        with pytest.raises(ValueError):
            GeoLocation("Texas", LocationKind.STATE)

    def test_city_needs_state_not_country(self, usa):
        with pytest.raises(ValueError):
            GeoLocation("Austin", LocationKind.CITY, usa)

    def test_street_needs_city(self, dc):
        with pytest.raises(ValueError):
            GeoLocation("Main Street", LocationKind.STREET, dc)


class TestContainment:
    def test_containers_most_specific_first(self, pennsylvania_ave, washington, dc, usa):
        assert pennsylvania_ave.containers == (washington, dc, usa)

    def test_full_name(self, pennsylvania_ave):
        assert pennsylvania_ave.full_name == (
            "Pennsylvania Avenue, Washington, District of Columbia, USA"
        )

    def test_contains_transitive(self, pennsylvania_ave, usa, washington):
        assert usa.contains(pennsylvania_ave)
        assert washington.contains(pennsylvania_ave)
        assert not pennsylvania_ave.contains(usa)

    def test_str_is_full_name(self, washington):
        assert str(washington) == washington.full_name


class TestAreRelated:
    def test_streets_in_same_city(self, washington):
        first = GeoLocation("A Street", LocationKind.STREET, washington)
        second = GeoLocation("B Street", LocationKind.STREET, washington)
        assert are_related(first, second)

    def test_street_and_its_city(self, pennsylvania_ave, washington):
        # The paper's own example: the street and the city it lies in.
        assert are_related(pennsylvania_ave, washington)
        assert are_related(washington, pennsylvania_ave)

    def test_cities_in_same_state(self, usa):
        georgia = GeoLocation("Georgia", LocationKind.STATE, usa)
        washington_ga = GeoLocation("Washington", LocationKind.CITY, georgia)
        college_park_ga = GeoLocation("College Park", LocationKind.CITY, georgia)
        assert are_related(washington_ga, college_park_ga)

    def test_unrelated_cities(self, usa, washington):
        texas = GeoLocation("Texas", LocationKind.STATE, usa)
        paris_tx = GeoLocation("Paris", LocationKind.CITY, texas)
        assert not are_related(washington, paris_tx)

    def test_countries_not_mutually_related(self, usa):
        france = GeoLocation("France", LocationKind.COUNTRY)
        assert not are_related(usa, france)

    def test_street_unrelated_to_city_elsewhere(self, pennsylvania_ave, usa):
        maryland = GeoLocation("Maryland", LocationKind.STATE, usa)
        baltimore = GeoLocation("Baltimore", LocationKind.CITY, maryland)
        assert not are_related(pennsylvania_ave, baltimore)
