"""Tests for the language-identification future-work module."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.language import (
    LANGUAGE_PROFILES,
    detect_language,
    is_english,
    language_scores,
)


class TestDetectLanguage:
    def test_english_sentence(self):
        assert detect_language(
            "the museum is in the centre of the city and it is open"
        ) == "en"

    def test_french_sentence(self):
        assert detect_language(
            "le musee de la ville est dans le centre et il est ouvert"
        ) == "fr"

    def test_german_sentence(self):
        assert detect_language(
            "das museum ist in der mitte der stadt und es ist offen"
        ) == "de"

    def test_italian_sentence(self):
        assert detect_language(
            "il museo della citta e nel centro e sono aperti"
        ) == "it"

    def test_entity_name_is_unknown(self):
        assert detect_language("Louvre") == "unknown"
        assert detect_language("Golden Table Bistro") == "unknown"

    def test_empty_text(self):
        assert detect_language("") == "unknown"

    def test_custom_default(self):
        assert detect_language("Melisse", default="en") == "en"

    def test_function_word_free_text_unknown(self):
        assert detect_language("quantum genetics microscope laboratory") == (
            "unknown"
        )


class TestScores:
    def test_scores_cover_all_profiles(self):
        scores = language_scores("the cat sat on the mat")
        assert set(scores) == set(LANGUAGE_PROFILES)

    def test_scores_bounded(self):
        scores = language_scores("le chat est sur le tapis")
        assert all(0.0 <= value <= 1.0 for value in scores.values())

    def test_empty_text_all_zero(self):
        assert set(language_scores("").values()) == {0.0}


class TestIsEnglish:
    def test_english_accepted(self):
        assert is_english("the gallery is open to the public and it is free")

    def test_french_rejected(self):
        assert not is_english("le restaurant est dans la rue principale de la ville")

    def test_names_pass_permissively(self):
        assert is_english("Chez Joshua")

    def test_names_fail_strictly(self):
        assert not is_english("Chez Joshua", permissive=False)


@given(st.text(max_size=120))
def test_detect_language_total(text):
    result = detect_language(text)
    assert result in set(LANGUAGE_PROFILES) | {"unknown"}
