"""Persistence regression: durable engine caches across "processes".

The engine's amortisation state -- the token-signature -> results cache
and the lifetime snippet -> label memo -- must round-trip through disk
(``EntityAnnotator.save_caches`` / ``load_caches``) with three guarantees:

* a warm-started annotator produces byte-identical annotations and
  virtual-clock accounting (warmth changes compute, never protocol);
* stale caches are *refused*: corpus growth, BM25 parameter changes,
  classifier retraining and format-version bumps all invalidate the file,
  mirroring the in-memory cache-drop hooks;
* loading is never a correctness dependency -- missing or corrupt files
  just mean a cold start.
"""

import random

import pytest

from repro import persistence
from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotator import ENGINE_CACHE_FILE, LABEL_MEMO_FILE, EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.ranking import BM25Parameters
from repro.web.search import SearchEngine

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = ["Grand Gallery", "Stone Hall", "Blue Door"]


def _make_engine(parameters=None) -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock(), parameters=parameters)
    rng = random.Random(0)
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
            )
            for name in _NAMES
            for i in range(8)
        ]
    )
    return engine


def _train(seed=1) -> SnippetTypeClassifier:
    rng = random.Random(seed)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_WORDS, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    return _train()


def _table(values) -> Table:
    table = Table(name="t", columns=[Column("Name", ColumnType.TEXT)])
    for value in values:
        table.append_row([value])
    return table


class TestEngineCacheRoundTrip:
    def test_warm_engine_matches_cold(self, classifier, tmp_path):
        first = _make_engine()
        annotator = EntityAnnotator(classifier, first, AnnotatorConfig())
        cold = annotator.annotate_tables([_table(_NAMES)], ["museum", "restaurant"])
        annotator.save_caches(tmp_path)

        second = _make_engine()  # "another process" over the same corpus
        warm_annotator = EntityAnnotator(classifier, second, AnnotatorConfig())
        loaded = warm_annotator.load_caches(tmp_path)
        assert loaded == {"search_results": True, "label_memo": True}
        warm = warm_annotator.annotate_tables(
            [_table(_NAMES)], ["museum", "restaurant"]
        )
        assert warm == cold
        # Identical protocol accounting: warmth never changes charges.
        assert second.clock.n_charges == first.clock.n_charges
        assert second.clock.elapsed_seconds == first.clock.elapsed_seconds
        # ... but the warm engine answered from the signature cache.
        assert warm.diagnostics == cold.diagnostics

    def test_save_then_load_same_engine_is_noop_safe(self, tmp_path):
        engine = _make_engine()
        engine.search_many(_NAMES, k=5)
        engine.save_results_cache(tmp_path / "cache.bin")
        assert engine.load_results_cache(tmp_path / "cache.bin") is True

    def test_missing_file_is_cold_start(self, tmp_path):
        engine = _make_engine()
        assert engine.load_results_cache(tmp_path / "nope.bin") is False

    def test_corrupt_file_is_cold_start(self, tmp_path):
        path = tmp_path / "cache.bin"
        path.write_bytes(b"not a pickle")
        engine = _make_engine()
        assert engine.load_results_cache(path) is False

    def test_corpus_growth_invalidates(self, tmp_path):
        engine = _make_engine()
        engine.search_many(_NAMES, k=5)
        engine.save_results_cache(tmp_path / "cache.bin")
        grown = _make_engine()
        grown.add_page(WebPage(url="https://x/new", title="New", body="new page"))
        assert grown.load_results_cache(tmp_path / "cache.bin") is False

    def test_same_shaped_different_corpus_invalidates(self, tmp_path):
        # Two corpora with identical page counts and body shapes (two
        # worlds differing only in seed, say) must not share a cache:
        # the fingerprint covers content identity, not just size.
        engine = _make_engine()
        engine.search_many(_NAMES, k=5)
        engine.save_results_cache(tmp_path / "cache.bin")
        other = SearchEngine(clock=VirtualClock())
        rng = random.Random(99)
        other.add_pages(
            [
                WebPage(
                    url=f"https://y/{name.replace(' ', '-').lower()}-{i}",
                    title=name,
                    body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
                )
                for name in ["Iron Court", "Green Arch", "Red Loft"]
                for i in range(8)
            ]
        )
        assert other.load_results_cache(tmp_path / "cache.bin") is False

    def test_body_only_difference_invalidates(self, tmp_path):
        # Regression: the fingerprint once covered only url, title and
        # indexed *length*.  Two corpora whose bodies are permutations of
        # the same words collide on all three (same urls, titles, token
        # counts) yet rank different snippets -- they must never validate
        # each other's persisted results.
        def permuted_engine(reverse: bool) -> SearchEngine:
            engine = SearchEngine(clock=VirtualClock())
            words = ["alpha", "beta", "gamma", "delta"]
            body_words = list(reversed(words)) if reverse else words
            engine.add_pages(
                [
                    WebPage(
                        url=f"https://x/page-{i}",
                        title="Page",
                        body=" ".join(body_words),
                    )
                    for i in range(4)
                ]
            )
            return engine

        engine = permuted_engine(reverse=False)
        engine.search_many(["alpha"], k=2)
        engine.save_results_cache(tmp_path / "cache.bin")
        other = permuted_engine(reverse=True)
        assert other.cache_fingerprint() != engine.cache_fingerprint()
        assert other.load_results_cache(tmp_path / "cache.bin") is False

    def test_parameter_change_invalidates(self, tmp_path):
        engine = _make_engine()
        engine.save_results_cache(tmp_path / "cache.bin")
        other = _make_engine(parameters=BM25Parameters(k1=1.2, b=0.5))
        assert other.load_results_cache(tmp_path / "cache.bin") is False

    def test_format_version_bump_invalidates(self, tmp_path, monkeypatch):
        engine = _make_engine()
        engine.save_results_cache(tmp_path / "cache.bin")
        monkeypatch.setattr(persistence, "CACHE_FORMAT_VERSION", 999)
        assert engine.load_results_cache(tmp_path / "cache.bin") is False

    def test_stale_in_memory_entries_not_saved(self, tmp_path):
        # Growing the corpus after a search must not leak pre-growth
        # results into the persisted file.
        engine = _make_engine()
        engine.search_many(_NAMES, k=5)
        engine.add_page(WebPage(url="https://x/new", title="New", body="new page"))
        engine.save_results_cache(tmp_path / "cache.bin")
        fresh = _make_engine()
        fresh.add_page(WebPage(url="https://x/new", title="New", body="new page"))
        assert fresh.load_results_cache(tmp_path / "cache.bin") is True
        assert not fresh._results_cache  # nothing stale came along


class TestLabelMemoRoundTrip:
    def test_memo_fingerprinted_by_classifier(self, classifier, tmp_path):
        engine = _make_engine()
        annotator = EntityAnnotator(classifier, engine, AnnotatorConfig())
        annotator.annotate_tables([_table(_NAMES)], ["museum", "restaurant"])
        annotator.save_caches(tmp_path)

        # Same training -> same fingerprint -> memo loads.
        twin = EntityAnnotator(_train(), _make_engine(), AnnotatorConfig())
        assert twin.load_caches(tmp_path)["label_memo"] is True
        assert twin.cell_annotator._label_memo

        # Different training -> different fingerprint -> refused.
        other = EntityAnnotator(_train(seed=5), _make_engine(), AnnotatorConfig())
        assert other.load_caches(tmp_path)["label_memo"] is False
        assert not other.cell_annotator._label_memo

    def test_fingerprint_stability_and_sensitivity(self, classifier):
        assert classifier.fingerprint() == classifier.fingerprint()
        assert _train().fingerprint() == classifier.fingerprint()
        assert _train(seed=5).fingerprint() != classifier.fingerprint()
        bayes = SnippetTypeClassifier(backend="bayes", min_count=1)
        with pytest.raises(RuntimeError):
            bayes.fingerprint()

    def test_memo_kind_and_engine_kind_not_interchangeable(
        self, classifier, tmp_path
    ):
        engine = _make_engine()
        annotator = EntityAnnotator(classifier, engine, AnnotatorConfig())
        annotator.annotate_tables([_table(_NAMES)], ["museum"])
        annotator.save_caches(tmp_path)
        # Point each loader at the other's file: both must refuse.
        assert (
            engine.load_results_cache(tmp_path / LABEL_MEMO_FILE) is False
        )
        assert (
            annotator.cell_annotator.load_label_memo(
                tmp_path / ENGINE_CACHE_FILE
            )
            is False
        )


class TestPayloadHelpers:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.bin"
        persistence.save_cache_payload(path, "k", ("f", 1), {"a": 1})
        assert persistence.load_cache_payload(path, "k", ("f", 1)) == {"a": 1}

    def test_fingerprint_mismatch(self, tmp_path):
        path = tmp_path / "x.bin"
        persistence.save_cache_payload(path, "k", ("f", 1), {"a": 1})
        assert persistence.load_cache_payload(path, "k", ("f", 2)) is None

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "x.bin"
        persistence.save_cache_payload(path, "k", "f", [1, 2])
        assert persistence.load_cache_payload(path, "k", "f") == [1, 2]

    def test_failed_dump_cleans_up_temp_file(self, tmp_path):
        # Regression: an unpicklable payload (or a full disk) used to
        # strand a ``*.tmp.<pid>`` file next to the cache.
        path = tmp_path / "x.bin"
        with pytest.raises(Exception):
            persistence.save_cache_payload(path, "k", "f", lambda: None)
        assert list(tmp_path.iterdir()) in ([], [persistence.lock_path_for(path)])
        assert not path.exists()
