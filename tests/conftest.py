"""Shared fixtures: the reduced-scale world and experiment context.

World and context construction are cached per configuration inside
:mod:`repro.synth.world` / :mod:`repro.eval.experiments`, so these fixtures
are cheap wrappers; the first test to touch one pays a few seconds, the
rest reuse it.  Tests must treat them as read-only -- anything that mutates
a world builds its own.
"""

from __future__ import annotations

import pytest

from repro.eval import experiments
from repro.synth.world import SyntheticWorld, WorldConfig


@pytest.fixture(scope="session")
def small_config() -> WorldConfig:
    return WorldConfig.small()


@pytest.fixture(scope="session")
def small_world(small_config) -> SyntheticWorld:
    return SyntheticWorld.build(small_config)


@pytest.fixture(scope="session")
def small_context(small_config):
    return experiments.build_context(small_config)


@pytest.fixture(scope="session")
def gft_corpus(small_context):
    return small_context.gft


@pytest.fixture(scope="session")
def wiki_corpus(small_context):
    return small_context.wiki


@pytest.fixture(scope="session")
def svm_classifier(small_context):
    return small_context.classifiers["svm"]


@pytest.fixture(scope="session")
def bayes_classifier(small_context):
    return small_context.classifiers["bayes"]
