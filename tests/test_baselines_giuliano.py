"""Tests for the Giuliano-style similarity baseline."""

import random

import pytest

from repro.baselines.giuliano import GiulianoAnnotator
from repro.classify.dataset import TextDataset
from repro.clock import VirtualClock
from repro.core.annotation import SnippetCache
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_MUSEUM = "exhibit gallery paintings curator museum collection".split()
_RESTAURANT = "menu chef cuisine dining wine tasting".split()
_REVIEW = "review rated stars recommend loved excellent".split()


def _training(seed=0, n=40):
    rng = random.Random(seed)
    ds = TextDataset()
    for _ in range(n):
        ds.add(" ".join(rng.choices(_MUSEUM, k=10)), "museum")
        ds.add(" ".join(rng.choices(_RESTAURANT, k=10)), "restaurant")
    return ds


def _engine():
    engine = SearchEngine(clock=VirtualClock())
    rng = random.Random(1)
    for i in range(8):
        engine.add_page(WebPage(
            url=f"https://x/m{i}", title="Grand Gallery",
            body="grand gallery " + " ".join(rng.choices(_MUSEUM, k=18)),
        ))
        # Review pages about restaurants: marker-bearing but not entities.
        engine.add_page(WebPage(
            url=f"https://x/rev{i}", title="Dining review roundup",
            body="dining roundup " + " ".join(
                rng.choices(_REVIEW + _RESTAURANT[:3], k=18)
            ),
        ))
    return engine


@pytest.fixture()
def annotator():
    return GiulianoAnnotator(_engine(), cache=SnippetCache()).fit(_training())


class TestCentroids:
    def test_one_centroid_per_label(self, annotator):
        assert set(annotator.centroids_) == {"museum", "restaurant"}

    def test_unfitted_raises(self):
        bare = GiulianoAnnotator(_engine())
        with pytest.raises(RuntimeError):
            bare.type_of_snippets(["x"], ["museum"])

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            GiulianoAnnotator(_engine(), similarity_threshold=0.0)


class TestSnippetTyping:
    def test_clear_museum_snippets(self, annotator):
        type_key, similarity = annotator.type_of_snippets(
            ["gallery exhibit curator paintings"], ["museum", "restaurant"]
        )
        assert type_key == "museum"
        assert similarity > 0.3

    def test_unrelated_snippets_below_threshold(self, annotator):
        type_key, _ = annotator.type_of_snippets(
            ["quarterly earnings dividend portfolio"], ["museum", "restaurant"]
        )
        assert type_key is None

    def test_empty_snippets(self, annotator):
        assert annotator.type_of_snippets([], ["museum"]) == (None, 0.0)

    def test_unknown_type_keys_skipped(self, annotator):
        type_key, _ = annotator.type_of_snippets(
            ["gallery exhibit"], ["airport"]
        )
        assert type_key is None


class TestAnnotation:
    def test_annotates_entity_cells(self, annotator):
        table = Table(
            name="t", columns=[Column("Name", ColumnType.TEXT)],
            rows=[["Grand Gallery"]],
        )
        annotation = annotator.annotate_table(table, ["museum", "restaurant"])
        assert [c.type_key for c in annotation.cells] == ["museum"]

    def test_the_papers_critique_review_text_misannotated(self, annotator):
        # The failure mode §5.2.1 predicts: text ABOUT restaurants scores
        # as similar to restaurant snippets as a restaurant itself, so the
        # similarity method annotates the review phrase.
        table = Table(
            name="t", columns=[Column("Notes", ColumnType.TEXT)],
            rows=[["dining review roundup"]],
        )
        annotation = annotator.annotate_table(table, ["museum", "restaurant"])
        assert [c.type_key for c in annotation.cells] == ["restaurant"]

    def test_outage_degrades_gracefully(self):
        engine = _engine()
        annotator = GiulianoAnnotator(engine).fit(_training())
        engine.available = False
        table = Table(
            name="t", columns=[Column("Name", ColumnType.TEXT)],
            rows=[["Grand Gallery"]],
        )
        annotation = annotator.annotate_table(table, ["museum"])
        assert len(annotation.cells) == 0

    def test_corpus_run(self, annotator):
        tables = [
            Table(name=f"t{i}", columns=[Column("Name", ColumnType.TEXT)],
                  rows=[["Grand Gallery"]])
            for i in range(2)
        ]
        run = annotator.annotate_tables(tables, ["museum"])
        assert len(run) == 2
