"""Chaos suite: deterministic fault injection against live processes.

Every test here breaks something for real -- a SIGKILLed pool worker, a
poison-pill query that crashes whoever touches it, a request that blows
up a pooled service batch, a client that vanishes mid-conversation, a
cache file replaced by garbage -- and asserts the system's *scripted*
recovery behaviour, exactly, thanks to the deterministic
:class:`~repro.resilience.FaultPlan` and the keyed failure draws.

The worker-crash tests exercise the ISSUE 6 acceptance criterion: a pool
worker SIGKILLed mid-``annotate_tables(workers=2)`` still yields a
complete, sequential-identical run with the crashed task requeued.
"""

from __future__ import annotations

import logging
import random
import socket

import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotation import SnippetCache
from repro.core.annotator import (
    ENGINE_CACHE_FILE,
    LABEL_MEMO_FILE,
    EntityAnnotator,
)
from repro.core.config import AnnotatorConfig
from repro.resilience import FaultPlan
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.daemon import (
    HAVE_UNIX_SOCKETS,
    AnnotationDaemon,
    AnnotationService,
    ServiceConfig,
)
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = [f"Venue {i}" for i in range(24)]
_TYPE_KEYS = ["museum", "restaurant"]

needs_unix_sockets = pytest.mark.skipif(
    not HAVE_UNIX_SOCKETS, reason="requires Unix-domain sockets"
)


def _make_engine(**kwargs) -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock(), **kwargs)
    rng = random.Random(0)
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
            )
            for name in _NAMES
            for i in range(4)
        ]
    )
    return engine


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    rng = random.Random(1)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_WORDS, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


def _corpus(n_tables=8, rows_per_table=3) -> list[Table]:
    tables = []
    for index in range(n_tables):
        table = Table(name=f"t{index}", columns=[Column("Name", ColumnType.TEXT)])
        for row in range(rows_per_table):
            table.append_row([_NAMES[(index * rows_per_table + row) % len(_NAMES)]])
        tables.append(table)
    return tables


# ------------------------------------------------------------ worker crashes


class TestWorkerCrashRecovery:
    def test_sigkilled_worker_is_requeued_and_run_completes(
        self, classifier, tmp_path
    ):
        """The headline chaos scenario: one worker SIGKILLs itself
        mid-task (kill-once token: exactly one crash across the pool);
        the task is requeued onto a survivor/respawn and the run comes
        back byte-identical to the sequential reference."""
        tables = _corpus()
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        engine = _make_engine()
        engine.fault_plan = FaultPlan(
            kill_on_query="Venue 5",  # lives in t1: mid-corpus, mid-task
            kill_once_token=str(tmp_path / "kill.token"),
        )
        run = EntityAnnotator(
            classifier, engine, AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert run.diagnostics.tasks_requeued >= 1
        assert run.diagnostics.tasks_quarantined == 0
        assert (tmp_path / "kill.token").exists()
        assert dict(run.tables) == dict(reference.tables)
        assert repr(sorted(run.tables.items())) == repr(
            sorted(reference.tables.items())
        )

    def test_poison_task_is_quarantined_with_degraded_tables(
        self, classifier
    ):
        """Without the kill-once token the query is a poison pill that
        crashes *every* worker attempting it: after ``task_retries``
        requeues the task is quarantined, its tables' candidate cells
        come back degraded (reason ``worker-crash``), and every other
        table is annotated exactly as the healthy reference."""
        tables = _corpus()
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        engine = _make_engine()
        engine.fault_plan = FaultPlan(kill_on_query="Venue 5")
        config = AnnotatorConfig(task_retries=1, chunk_cost_target=3)
        run = EntityAnnotator(classifier, engine, config).annotate_tables(
            tables, _TYPE_KEYS, workers=2
        )
        assert run.diagnostics.tasks_quarantined == 1
        assert run.diagnostics.tasks_requeued >= 1
        # chunk_cost_target=3 makes one 3-row table per task, so exactly
        # the poisoned table is lost -- all three of its candidate cells
        # degraded, nothing annotated.
        degraded = run.degraded_cells()
        assert degraded and {cell.reason for cell in degraded} == {
            "worker-crash"
        }
        poisoned_tables = {cell.table_name for cell in degraded}
        assert poisoned_tables == {"t1"}
        assert run.tables["t1"].cells == []
        assert len(run.tables["t1"].degraded) == 3
        for table in tables:
            if table.name not in poisoned_tables:
                assert run.tables[table.name] == reference.tables[table.name]
        # The corpus-position reassembly keeps every table, in order.
        assert list(run.tables) == [table.name for table in tables]


class TestSliceCrashRecovery:
    """ISSUE 7 chaos criterion: crash recovery at *slice* granularity.

    A skewed corpus (one 14-row giant + five 2-row smalls, fully
    distinct content) under ``split_giant_tables`` with
    ``max_slice_cost=4`` cuts the giant into exactly the slices
    ``[0,4) [4,8) [8,12) [12,14)``; the kill query ``Venue 5`` lives
    only in the ``[4,8)`` slice, so that slice -- and nothing else -- is
    the casualty."""

    def _skewed(self):
        giant = Table(name="giant", columns=[Column("Name", ColumnType.TEXT)])
        for row in range(14):
            giant.append_row([_NAMES[row]])
        tables = [giant]
        for index in range(5):
            small = Table(
                name=f"s{index}", columns=[Column("Name", ColumnType.TEXT)]
            )
            for row in range(2):
                small.append_row([_NAMES[14 + index * 2 + row]])
            tables.append(small)
        return tables

    def _config(self, **kwargs) -> AnnotatorConfig:
        return AnnotatorConfig(
            schedule="stealing",
            chunk_cost_target=4,
            split_giant_tables=True,
            max_slice_cost=4,
            **kwargs,
        )

    def test_sigkill_mid_slice_requeues_only_that_slice(
        self, classifier, tmp_path
    ):
        """One worker dies holding the giant's ``[4,8)`` slice; exactly
        one task is requeued and the reassembled run -- including the
        split table -- is byte-identical to the sequential reference."""
        tables = self._skewed()
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        engine = _make_engine()
        engine.fault_plan = FaultPlan(
            kill_on_query="Venue 5",
            kill_once_token=str(tmp_path / "kill.token"),
        )
        run = EntityAnnotator(
            classifier, engine, self._config()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert run.diagnostics.tasks_requeued == 1
        assert run.diagnostics.tasks_quarantined == 0
        assert (tmp_path / "kill.token").exists()
        assert run.diagnostics.tables_split == 1
        assert run.diagnostics.effective_chunk_cost == 4
        assert repr(sorted(run.tables.items())) == repr(
            sorted(reference.tables.items())
        )
        assert list(run.tables) == [table.name for table in tables]
        # Slice-aware accounting still sums exactly: every physical table
        # and candidate cell is counted once across the pool's loads
        # (requeued attempts produce no phantom counts), and 4 slices +
        # 3 small chunks = 7 completed tasks.
        loads = run.diagnostics.worker_loads
        assert sum(load.n_tables for load in loads) == len(tables)
        assert (
            sum(load.n_cells for load in loads) == reference.diagnostics.n_cells
        )
        assert sum(load.n_tasks for load in loads) == 7
        assert all(load.busy_seconds >= 0.0 for load in loads)

    def test_poison_slice_quarantines_only_its_rows(self, classifier):
        """Without the kill-once token the ``[4,8)`` slice is a poison
        pill: after ``task_retries`` requeues it is quarantined, exactly
        rows 4-7 of the giant degrade (reason ``worker-crash``), and the
        giant's *other* rows -- plus every small table -- still match the
        healthy sequential reference.  Post-processing is off in both
        runs: Equation 2's column scores over a partially-degraded table
        legitimately differ from the healthy table's, so the exact
        surviving-cell comparison belongs to the annotation stage."""
        tables = self._skewed()
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig(use_postprocessing=False)
        ).annotate_tables(tables, _TYPE_KEYS)
        engine = _make_engine()
        engine.fault_plan = FaultPlan(kill_on_query="Venue 5")
        run = EntityAnnotator(
            classifier,
            engine,
            self._config(task_retries=1, use_postprocessing=False),
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert run.diagnostics.tasks_quarantined == 1
        assert run.diagnostics.tasks_requeued >= 1
        degraded = run.tables["giant"].degraded
        assert {cell.reason for cell in degraded} == {"worker-crash"}
        assert sorted(cell.row for cell in degraded) == [4, 5, 6, 7]
        assert run.degraded_cells() == degraded  # nothing else was lost
        # The giant's surviving rows carry exactly the reference's cells
        # -- the quarantined slice cost its own rows and nothing more.
        expected = [
            cell
            for cell in reference.tables["giant"].cells
            if not 4 <= cell.row < 8
        ]
        assert run.tables["giant"].cells == expected
        for table in tables[1:]:
            assert run.tables[table.name] == reference.tables[table.name]


# ------------------------------------------------------- service batch poison


class TestBatchPoisonIsolation:
    def test_bisection_fails_only_the_poisoned_request(self, classifier):
        annotator = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig(), cache=SnippetCache()
        )
        real_annotate_batch = annotator.annotate_batch

        def poisoned_annotate_batch(tables, type_keys, **kwargs):
            if any(table.name == "poison" for table in tables):
                raise RuntimeError("simulated annotator blow-up")
            return real_annotate_batch(tables, type_keys, **kwargs)

        annotator.annotate_batch = poisoned_annotate_batch
        service = AnnotationService(
            annotator, ServiceConfig(batch_window_ms=200.0, max_batch_tables=8)
        ).start()
        try:
            import threading

            names = ["a", "b", "poison", "c", "d"]
            tables = [
                Table(name=name, columns=[Column("Name", ColumnType.TEXT)])
                for name in names
            ]
            for index, table in enumerate(tables):
                table.append_row([_NAMES[index]])
            responses = [None] * len(tables)
            barrier = threading.Barrier(len(tables))

            def submit(index):
                barrier.wait()
                responses[index] = service.submit(
                    protocol.annotate_table_request(
                        tables[index], _TYPE_KEYS, str(index)
                    )
                )

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(len(tables))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            by_name = dict(zip(names, responses))
            poisoned = by_name.pop("poison")
            assert not poisoned.ok
            assert "annotation failed" in poisoned.error
            assert all(response.ok for response in by_name.values())
            assert service.stats.poisoned_requests == 1
            # The healthy four were served by the bisected sub-passes.
            assert service.stats.requests == 4
            reference = EntityAnnotator(
                classifier, _make_engine(), AnnotatorConfig()
            )
            for name, response in by_name.items():
                table = tables[names.index(name)]
                assert (
                    protocol.annotation_from_payload(
                        response.result["annotation"]
                    )
                    == reference.annotate_table(table, _TYPE_KEYS)
                )
        finally:
            service.stop()

    def test_healthy_batch_pays_no_bisection(self, classifier):
        annotator = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig(), cache=SnippetCache()
        )
        service = AnnotationService(annotator, ServiceConfig()).start()
        try:
            table = Table(name="t", columns=[Column("Name", ColumnType.TEXT)])
            table.append_row([_NAMES[0]])
            response = service.submit(
                protocol.annotate_table_request(table, _TYPE_KEYS, "1")
            )
            assert response.ok
            assert service.stats.poisoned_requests == 0
            assert service.stats.batches == 1
        finally:
            service.stop()


# ------------------------------------------------------ daemon connection chaos


@needs_unix_sockets
class TestDaemonConnectionChaos:
    def _daemon(self, classifier, tmp_path) -> AnnotationDaemon:
        annotator = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig(), cache=SnippetCache()
        )
        return AnnotationDaemon(
            annotator, tmp_path / "svc.sock", ServiceConfig()
        )

    def test_malformed_line_gets_structured_error_connection_survives(
        self, classifier, tmp_path
    ):
        with self._daemon(classifier, tmp_path):
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.connect(str(tmp_path / "svc.sock"))
                sock.sendall(b"this is not json{{{\n")
                with sock.makefile("rb") as reader:
                    answer = protocol.decode_response(reader.readline())
                    assert not answer.ok
                    assert "JSON" in answer.error
                    # Same connection, next line: still fully usable.
                    sock.sendall(
                        protocol.encode_request(protocol.ping_request("2"))
                    )
                    pong = protocol.decode_response(reader.readline())
                    assert pong.ok and pong.request_id == "2"

    def test_client_vanishing_mid_request_leaves_daemon_serving(
        self, classifier, tmp_path
    ):
        with self._daemon(classifier, tmp_path):
            table = Table(name="t", columns=[Column("Name", ColumnType.TEXT)])
            for name in _NAMES[:3]:
                table.append_row([name])
            # Fire an annotation request and slam the connection shut
            # without reading the answer: the handler's write hits a
            # dead socket and must take down only that handler thread.
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(str(tmp_path / "svc.sock"))
            sock.sendall(
                protocol.encode_request(
                    protocol.annotate_table_request(table, _TYPE_KEYS, "1")
                )
            )
            sock.close()
            # A well-behaved client is served as if nothing happened.
            with ServiceClient(tmp_path / "svc.sock") as client:
                assert client.ping()["version"] == protocol.PROTOCOL_VERSION
                annotation = client.annotate_table(table, _TYPE_KEYS)
                reference = EntityAnnotator(
                    classifier, _make_engine(), AnnotatorConfig()
                ).annotate_table(table, _TYPE_KEYS)
                assert annotation == reference


# ----------------------------------------------------------- cache corruption


class TestCorruptCacheColdStart:
    def test_garbage_cache_files_warn_and_start_cold(
        self, classifier, tmp_path, caplog
    ):
        (tmp_path / ENGINE_CACHE_FILE).write_bytes(b"\x00garbage\xff" * 64)
        (tmp_path / LABEL_MEMO_FILE).write_bytes(b"not a pickle")
        annotator = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        )
        with caplog.at_level(logging.WARNING, logger="repro.persistence"):
            loaded = annotator.load_caches(tmp_path)
        assert loaded == {"search_results": False, "label_memo": False}
        warnings = [record.message for record in caplog.records]
        assert sum("starting cold" in message for message in warnings) == 2
        # Cold is cold, not broken: the run proceeds and a save then
        # replaces the garbage with real caches that load cleanly.
        tables = _corpus(n_tables=2)
        run = annotator.annotate_tables(tables, _TYPE_KEYS, cache_dir=tmp_path)
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        assert dict(run.tables) == dict(reference.tables)
        fresh = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        assert fresh.load_caches(tmp_path) == {
            "search_results": True,
            "label_memo": True,
        }

    def test_truncated_cache_file_is_a_cold_start(
        self, classifier, tmp_path, caplog
    ):
        # A real cache, truncated mid-write by a simulated crash.
        annotator = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        )
        annotator.annotate_tables(
            _corpus(n_tables=2), _TYPE_KEYS, cache_dir=tmp_path
        )
        blob = (tmp_path / ENGINE_CACHE_FILE).read_bytes()
        assert len(blob) > 10
        (tmp_path / ENGINE_CACHE_FILE).write_bytes(blob[: len(blob) // 2])
        fresh = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        with caplog.at_level(logging.WARNING, logger="repro.persistence"):
            loaded = fresh.load_caches(tmp_path)
        assert loaded["search_results"] is False
        assert loaded["label_memo"] is True
        assert any(
            "starting cold" in record.message for record in caplog.records
        )
