"""Tests for bootstrap confidence intervals."""

import pytest

from repro.core.results import AnnotationRun, CellAnnotation
from repro.eval.gold import GoldEntityReference, GoldStandard
from repro.eval.significance import ConfidenceInterval, bootstrap_f1


def _gold(n=20):
    gold = GoldStandard()
    for i in range(n):
        gold.add(GoldEntityReference("t", i, 0, "museum", f"M{i}"))
    return gold


def _run(hit_rows, fp_rows=()):
    run = AnnotationRun()
    for row in hit_rows:
        run.add(CellAnnotation("t", row, 0, "museum", 0.9))
    for row in fp_rows:
        run.add(CellAnnotation("t", row, 1, "museum", 0.9))
    return run


class TestBootstrapF1:
    def test_perfect_run_tight_interval_at_one(self):
        ci = bootstrap_f1(_run(range(20)), _gold(20), "museum")
        assert ci.point == 1.0
        assert ci.low == ci.high == 1.0

    def test_point_estimate_matches_direct_f(self):
        ci = bootstrap_f1(_run(range(10)), _gold(20), "museum")
        # P = 1.0, R = 0.5 -> F = 2/3.
        assert ci.point == pytest.approx(2 / 3)

    def test_interval_contains_point(self):
        ci = bootstrap_f1(_run(range(12), fp_rows=range(3)), _gold(20), "museum")
        assert ci.point in ci
        assert ci.low <= ci.point <= ci.high

    def test_interval_narrows_with_more_gold(self):
        wide = bootstrap_f1(_run(range(5)), _gold(10), "museum", seed=1)
        narrow = bootstrap_f1(_run(range(100)), _gold(200), "museum", seed=1)
        assert narrow.width() < wide.width()

    def test_deterministic_per_seed(self):
        first = bootstrap_f1(_run(range(8)), _gold(20), "museum", seed=4)
        second = bootstrap_f1(_run(range(8)), _gold(20), "museum", seed=4)
        assert (first.low, first.high) == (second.low, second.high)

    def test_false_positives_lower_the_interval(self):
        clean = bootstrap_f1(_run(range(10)), _gold(20), "museum", seed=2)
        noisy = bootstrap_f1(
            _run(range(10), fp_rows=range(10)), _gold(20), "museum", seed=2
        )
        assert noisy.point < clean.point
        assert noisy.high <= clean.high

    def test_empty_type_zero_interval(self):
        ci = bootstrap_f1(AnnotationRun(), _gold(5), "museum")
        assert ci.point == 0.0
        assert ci.low == ci.high == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_f1(AnnotationRun(), _gold(5), "museum", confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_f1(AnnotationRun(), _gold(5), "museum", n_resamples=0)

    def test_interval_on_real_run(self, small_context):
        run = small_context.annotation_run(backend="svm", postprocess=True)
        ci = bootstrap_f1(run, small_context.gft.gold, "museum", n_resamples=200)
        assert 0.0 < ci.low <= ci.point <= ci.high <= 1.0
        assert ci.width() < 0.5


class TestConfidenceInterval:
    def test_contains(self):
        ci = ConfidenceInterval(point=0.5, low=0.4, high=0.6, confidence=0.95)
        assert 0.45 in ci
        assert 0.7 not in ci

    def test_width(self):
        ci = ConfidenceInterval(point=0.5, low=0.4, high=0.6, confidence=0.95)
        assert ci.width() == pytest.approx(0.2)
