"""Failure parity: every execution tier fails the *same* queries.

The failure draw is a pure function of ``(engine seed, query text,
occurrence index)`` (:func:`repro.resilience.deterministic_unit`), never
of a shared RNG stream or of request ordering.  That is what lets the
repo keep one correctness story across its four execution tiers: for a
workload of distinct queries, the per-cell loop, the batched
``search_many`` path, and the multi-process pool must all drop exactly
the same requests under the same seeded failure rate -- with and without
retries -- and therefore degrade exactly the same cells.
"""

from __future__ import annotations

import random

import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.core.results import AnnotationRun
from repro.resilience import FaultPlan
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine, SearchEngineUnavailable

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = [f"Venue {i}" for i in range(24)]
_TYPE_KEYS = ["museum", "restaurant"]
_RATE = 0.3


def _make_engine(**kwargs) -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock(), **kwargs)
    rng = random.Random(0)
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
            )
            for name in _NAMES
            for i in range(4)
        ]
    )
    return engine


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    rng = random.Random(1)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_WORDS, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


def _corpus(n_tables=8, rows_per_table=3) -> list[Table]:
    """Distinct-content corpus: no query string repeats anywhere."""
    tables = []
    for index in range(n_tables):
        table = Table(name=f"t{index}", columns=[Column("Name", ColumnType.TEXT)])
        for row in range(rows_per_table):
            table.append_row([_NAMES[(index * rows_per_table + row) % len(_NAMES)]])
        tables.append(table)
    return tables


def _degraded_queries(run_or_annotation) -> set[str]:
    if hasattr(run_or_annotation, "degraded_cells"):
        return {cell.query for cell in run_or_annotation.degraded_cells()}
    return {cell.query for cell in run_or_annotation.degraded}


# ------------------------------------------------------------- engine level


class TestEngineLevelParity:
    @pytest.mark.parametrize("rounds", [1, 3])
    def test_search_and_search_many_drop_the_same_queries(self, rounds):
        """Per-query ``search`` and batched ``search_many`` agree on
        which (query, occurrence) requests fail -- over several issue
        rounds, i.e. matching occurrence indices."""
        per_query = _make_engine(failure_rate=_RATE)
        batched = _make_engine(failure_rate=_RATE)
        for _ in range(rounds):
            singles = []
            for name in _NAMES:
                try:
                    per_query.search(name)
                    singles.append(False)
                except SearchEngineUnavailable:
                    singles.append(True)
            many = [
                results is None for results in batched.search_many(_NAMES)
            ]
            assert singles == many
        # Same workload, same accounting.
        assert per_query.query_count == batched.query_count


# ----------------------------------------------------------- pipeline level


class TestPipelineFailureParity:
    @pytest.mark.parametrize("retries", [0, 2])
    def test_per_cell_and_batched_degrade_the_same_cells(
        self, classifier, retries
    ):
        table = _corpus(n_tables=1, rows_per_table=12)[0]
        config = AnnotatorConfig(retries=retries, retry_backoff_ms=100.0)
        per_cell = EntityAnnotator(
            classifier, _make_engine(failure_rate=_RATE), config
        )._annotate_table_per_cell(table, _TYPE_KEYS)
        batched = EntityAnnotator(
            classifier, _make_engine(failure_rate=_RATE), config
        ).annotate_table(table, _TYPE_KEYS)
        assert _degraded_queries(per_cell) == _degraded_queries(batched)
        assert per_cell == batched

    @pytest.mark.parametrize("retries", [0, 2])
    def test_workers_degrade_the_same_cells_as_sequential(
        self, classifier, retries
    ):
        """``annotate_tables(workers=2)`` on a distinct-content corpus:
        every query's attempt sequence (first issue, retries, repair
        re-issue) lives inside one worker, so its occurrence indices --
        and hence its failure draws -- match the sequential run's."""
        tables = _corpus()
        config = AnnotatorConfig(retries=retries, retry_backoff_ms=100.0)
        sequential = EntityAnnotator(
            classifier, _make_engine(failure_rate=_RATE), config
        ).annotate_tables(tables, _TYPE_KEYS)
        parallel = EntityAnnotator(
            classifier, _make_engine(failure_rate=_RATE), config
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert _degraded_queries(parallel) == _degraded_queries(sequential)
        assert parallel == sequential
        assert (
            parallel.diagnostics.degraded_cells
            == sequential.diagnostics.degraded_cells
        )
        assert (
            parallel.diagnostics.search_failures
            == sequential.diagnostics.search_failures
        )

    def test_failure_count_matches_degraded_accounting(self, classifier):
        tables = _corpus()
        annotator = EntityAnnotator(
            classifier, _make_engine(failure_rate=_RATE), AnnotatorConfig()
        )
        run = annotator.annotate_tables(tables, _TYPE_KEYS)
        # Post-processing can only *drop* annotated cells, never revive a
        # failed one, so the degraded list is exactly the failure tally.
        assert annotator.cell_annotator.failure_count == len(
            run.degraded_cells()
        )
        assert run.diagnostics.search_failures == len(run.degraded_cells())

    def test_execution_matrix_identical_payloads(self, classifier):
        """The full execution matrix on a skewed distinct-content corpus:
        per-cell, batched sequential, workers=2 static, workers=2
        stealing, and workers=2 stealing with row-range splitting of the
        giant table -- crossed with three fault regimes (healthy, seeded
        failure rate, scripted :class:`FaultPlan`) -- all produce
        byte-identical per-table payloads and degrade the same queries."""
        giant = Table(name="giant", columns=[Column("Name", ColumnType.TEXT)])
        for row in range(14):
            giant.append_row([_NAMES[row]])
        smalls = []
        for index in range(5):
            small = Table(
                name=f"s{index}", columns=[Column("Name", ColumnType.TEXT)]
            )
            for row in range(2):
                small.append_row([_NAMES[14 + index * 2 + row]])
            smalls.append(small)
        tables = [giant, *smalls]

        def payload(run_or_tables):
            if isinstance(run_or_tables, AnnotationRun):
                annotations = run_or_tables.tables
            else:
                annotations = run_or_tables
            return {name: repr(a) for name, a in annotations.items()}

        regimes = {
            "healthy": (0.0, None),
            "seeded-rate": (_RATE, None),
            "fault-plan": (
                0.0,
                FaultPlan(fail_first={_NAMES[2]: 1, _NAMES[7]: 3, _NAMES[19]: 1}),
            ),
        }
        for regime, (rate, plan) in regimes.items():

            def annotator(config=None):
                engine = _make_engine(failure_rate=rate)
                engine.fault_plan = plan
                return EntityAnnotator(
                    classifier, engine, config or AnnotatorConfig()
                )

            per_cell = {
                table.name: annotator()._annotate_table_per_cell(
                    table, _TYPE_KEYS
                )
                for table in tables
            }
            arms = {
                "batched": annotator().annotate_tables(tables, _TYPE_KEYS),
                "static": annotator(
                    AnnotatorConfig(schedule="static")
                ).annotate_tables(tables, _TYPE_KEYS, workers=2),
                "stealing": annotator(
                    AnnotatorConfig(schedule="stealing")
                ).annotate_tables(tables, _TYPE_KEYS, workers=2),
                "splitting": annotator(
                    AnnotatorConfig(schedule="stealing", split_giant_tables=True)
                ).annotate_tables(tables, _TYPE_KEYS, workers=2),
            }
            # The splitting arm genuinely split: auto chunk cost for this
            # corpus is below the giant table's cost.
            assert arms["splitting"].diagnostics.tables_split == 1, regime
            reference = payload(per_cell)
            reference_degraded = set().union(
                *[_degraded_queries(a) for a in per_cell.values()]
            )
            for arm, run in arms.items():
                assert payload(run) == reference, (regime, arm)
                assert _degraded_queries(run) == reference_degraded, (
                    regime,
                    arm,
                )

    def test_service_batch_agrees_with_annotate_tables(self, classifier):
        """The service's pooled ``annotate_batch`` rides the same batched
        resolution, so it degrades the same cells as the corpus path."""
        tables = _corpus(n_tables=4)
        corpus_run = EntityAnnotator(
            classifier, _make_engine(failure_rate=_RATE), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        batch = EntityAnnotator(
            classifier, _make_engine(failure_rate=_RATE), AnnotatorConfig()
        ).annotate_batch(tables, _TYPE_KEYS)
        batch_queries = set().union(
            *[_degraded_queries(a) for a in batch.annotations]
        )
        assert batch_queries == _degraded_queries(corpus_run)
        assert list(batch.annotations) == [
            corpus_run.tables[table.name] for table in tables
        ]
