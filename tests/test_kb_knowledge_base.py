"""Tests for the DBpedia stand-in knowledge base and the catalogue."""

import pytest

from repro.kb.catalogue import Catalogue, normalize_name
from repro.kb.knowledge_base import KnowledgeBase


@pytest.fixture()
def kb():
    base = KnowledgeBase()
    base.add_category("Museums")
    base.add_category("Museums in France", parent="Museums")
    base.add_category("History museums in France", parent="Museums in France")
    base.add_category("Curators", parent="Museums")
    base.add_entity("db:louvre", "Musee du Louvre", "museum",
                    ["Museums in France", "History museums in France"])
    base.add_entity("db:orsay", "Musee d'Orsay", "museum", ["Museums in France"])
    base.add_entity("db:smith", "Jane Smith", "person", ["Curators"])
    return base


class TestEntities:
    def test_get_by_uri(self, kb):
        assert kb.get("db:louvre").name == "Musee du Louvre"

    def test_unknown_uri_raises(self, kb):
        with pytest.raises(KeyError):
            kb.get("db:nothing")

    def test_duplicate_uri_rejected(self, kb):
        with pytest.raises(ValueError):
            kb.add_entity("db:louvre", "Copy", "museum")

    def test_entities_of_type(self, kb):
        assert [e.uri for e in kb.entities_of_type("museum")] == [
            "db:louvre", "db:orsay",
        ]

    def test_entities_in_category(self, kb):
        assert [e.uri for e in kb.entities_in_category("Curators")] == ["db:smith"]

    def test_union_over_categories_deduplicates(self, kb):
        entities = kb.entities_in_categories(
            ["Museums in France", "History museums in France"]
        )
        assert [e.uri for e in entities] == ["db:louvre", "db:orsay"]

    def test_len_and_contains(self, kb):
        assert len(kb) == 3
        assert "db:orsay" in kb


class TestTriplesMirror:
    def test_type_triples(self, kb):
        assert kb.triples.subjects("rdf:type", "museum") == ["db:louvre", "db:orsay"]

    def test_category_triples(self, kb):
        assert "db:smith" in kb.triples.subjects("dcterms:subject", "Curators")

    def test_broader_triples(self, kb):
        assert kb.subcategories_sparql("Museums") == ["Curators", "Museums in France"]


class TestPositiveWalk:
    def test_positive_categories_exclude_noise(self, kb):
        categories = kb.positive_categories("Museums", "museum")
        assert "Curators" not in categories
        assert "History museums in France" in categories
        assert categories[0] == "Museums"

    def test_positive_entities_are_type_clean(self, kb):
        entities = kb.positive_entities("Museums", "museum")
        assert {e.entity_type for e in entities} == {"museum"}
        assert len(entities) == 2


class TestNormalizeName:
    def test_strips_punctuation_and_case(self):
        assert normalize_name("  The Louvre,  Museum! ") == "the louvre museum"

    def test_idempotent(self):
        once = normalize_name("Chez  Panisse!")
        assert normalize_name(once) == once


class TestCatalogue:
    def test_from_knowledge_base(self, kb):
        catalogue = Catalogue.from_knowledge_base(kb)
        assert catalogue.types_of("musee du louvre") == {"museum"}
        assert len(catalogue) == 3

    def test_lookup_is_normalised(self, kb):
        catalogue = Catalogue.from_knowledge_base(kb)
        assert "MUSEE DU LOUVRE!!" in catalogue

    def test_unknown_name_empty_types(self):
        assert Catalogue().types_of("nothing") == set()

    def test_ambiguous_name_many_types(self):
        catalogue = Catalogue()
        catalogue.add("Melisse", "restaurant")
        catalogue.add("Melisse", "music_label")
        assert catalogue.types_of("melisse") == {"restaurant", "music_label"}

    def test_duplicate_add_idempotent(self):
        catalogue = Catalogue()
        catalogue.add("X", "museum")
        catalogue.add("X", "museum")
        assert len(catalogue) == 1

    def test_coverage_fraction(self):
        catalogue = Catalogue()
        catalogue.add("known", "museum")
        assert catalogue.coverage(["known", "unknown", "missing", "known"]) == 0.5

    def test_coverage_empty_names(self):
        assert Catalogue().coverage([]) == 0.0

    def test_merge_unions(self):
        first = Catalogue()
        first.add("A", "museum")
        second = Catalogue()
        second.add("B", "hotel")
        merged = first.merge(second)
        assert "A" in merged and "B" in merged
        assert len(merged) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Catalogue().add("   !!! ", "museum")
