"""Tests for the Fusion Tables service."""

import pytest

from repro.tables.fusion import FusionTableService
from repro.tables.model import Column, ColumnType, Table
from repro.tables.sql import SqlError


def _table(name, rows):
    return Table(
        name=name,
        columns=[Column("Name", ColumnType.TEXT), Column("City", ColumnType.TEXT)],
        rows=rows,
    )


@pytest.fixture()
def service():
    svc = FusionTableService()
    svc.publish(_table("LA restaurants", [["Melisse", "Santa Monica"]]))
    svc.publish(_table("Paris museums", [["Louvre", "Paris"], ["Orsay", "Paris"]]))
    return svc


class TestHosting:
    def test_ids_are_sequential(self, service):
        assert service.table_ids() == ["gft-1", "gft-2"]

    def test_get_returns_table(self, service):
        assert service.get("gft-2").name == "Paris museums"

    def test_get_unknown_raises(self, service):
        with pytest.raises(KeyError):
            service.get("gft-99")

    def test_len_counts_tables(self, service):
        assert len(service) == 2


class TestSearch:
    def test_matches_table_name(self, service):
        assert service.search("restaurants") == ["gft-1"]

    def test_matches_cell_content(self, service):
        assert service.search("louvre") == ["gft-2"]

    def test_conjunctive_keywords(self, service):
        assert service.search("paris museums") == ["gft-2"]
        assert service.search("paris restaurants") == []

    def test_case_insensitive(self, service):
        assert service.search("MELISSE") == ["gft-1"]

    def test_empty_query(self, service):
        assert service.search("") == []

    def test_matches_column_headers(self, service):
        # every published table has a City column
        assert service.search("city") == ["gft-1", "gft-2"]


class TestSqlApi:
    def test_query_hosted_table(self, service):
        rows = service.query("SELECT Name FROM gft-2 WHERE City = 'Paris'")
        assert rows == [["Louvre"], ["Orsay"]]

    def test_unknown_table_id(self, service):
        with pytest.raises(SqlError):
            service.query("SELECT * FROM gft-42")
