"""Tests for column typing and relations (table-annotation steps a and b)."""

import pytest

from repro.core.column_typing import (
    HAS_PHONE,
    HAS_WEBSITE,
    LOCATED_IN,
    ColumnAnnotation,
    detect_relations,
    type_columns,
)
from repro.core.results import CellAnnotation, TableAnnotation
from repro.tables.model import Column, ColumnType, Table


@pytest.fixture()
def table():
    return Table(
        name="pois",
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Address", ColumnType.LOCATION),
            Column("Phone", ColumnType.TEXT),
            Column("Website", ColumnType.TEXT),
            Column("Opened", ColumnType.DATE),
        ],
        rows=[
            ["Louvre", "Rue de Rivoli, Paris", "(310) 111-2222",
             "https://louvre.fr", "1793-08-10"],
            ["Orsay", "1 Rue de la Legion, Paris", "(310) 333-4444",
             "https://orsay.fr", "1986-12-01"],
            ["Uffizi", "Piazzale degli Uffizi, Florence", "(310) 555-6666",
             "https://uffizi.it", "1865-01-01"],
        ],
    )


@pytest.fixture()
def annotation(table):
    ta = TableAnnotation(table_name=table.name)
    for row in range(3):
        ta.add(CellAnnotation(table.name, row, 0, "museum", 0.9))
    return ta


class TestTypeColumns:
    def test_entity_column_typed_from_annotations(self, table, annotation):
        columns = type_columns(table, annotation)
        assert columns[0].kind == "museum"
        assert columns[0].support == pytest.approx(1.0)

    def test_syntactic_columns(self, table, annotation):
        columns = {c.column: c for c in type_columns(table, annotation)}
        assert columns[2].kind == "phone"
        assert columns[3].kind == "url"

    def test_gft_declared_kinds_respected(self, table, annotation):
        columns = {c.column: c for c in type_columns(table, annotation)}
        assert columns[1].kind == "location"
        assert columns[4].kind == "date"

    def test_min_support_threshold(self, table):
        sparse = TableAnnotation(table_name=table.name)
        sparse.add(CellAnnotation(table.name, 0, 0, "museum", 0.9))
        columns = type_columns(table, sparse, min_support=0.5)
        # 1 of 3 annotated < 0.5 support -> falls back to text.
        assert columns[0].kind == "text"

    def test_mixed_annotations_majority_wins(self, table):
        mixed = TableAnnotation(table_name=table.name)
        mixed.add(CellAnnotation(table.name, 0, 0, "museum", 0.9))
        mixed.add(CellAnnotation(table.name, 1, 0, "museum", 0.9))
        mixed.add(CellAnnotation(table.name, 2, 0, "theatre", 0.9))
        columns = type_columns(table, mixed)
        assert columns[0].kind == "museum"

    def test_number_column_detected(self):
        t = Table(name="n", columns=[Column("Count", ColumnType.TEXT)],
                  rows=[["12"], ["15"], ["999"]])
        columns = type_columns(t, TableAnnotation(table_name="n"))
        assert columns[0].kind == "number"

    def test_invalid_min_support(self, table, annotation):
        with pytest.raises(ValueError):
            type_columns(table, annotation, min_support=0.0)


class TestDetectRelations:
    def test_located_in_and_companions(self, table, annotation):
        columns = type_columns(table, annotation)
        relations = detect_relations(table, columns, {"museum"})
        predicates = {(r.predicate, r.object_column) for r in relations}
        assert (LOCATED_IN, 1) in predicates
        assert (HAS_PHONE, 2) in predicates
        assert (HAS_WEBSITE, 3) in predicates
        assert all(r.subject_column == 0 for r in relations)

    def test_no_entity_column_no_relations(self, table):
        columns = type_columns(table, TableAnnotation(table_name=table.name))
        assert detect_relations(table, columns, {"museum"}) == []

    def test_figure1_scenario(self):
        # Figure 1: museum names + city column -> locatedIn.
        t = Table(
            name="fig1",
            columns=[Column("Museum", ColumnType.TEXT),
                     Column("City", ColumnType.LOCATION)],
            rows=[["Louvre", "Paris"], ["Met", "New York"]],
        )
        ta = TableAnnotation(table_name="fig1")
        ta.add(CellAnnotation("fig1", 0, 0, "museum", 1.0))
        ta.add(CellAnnotation("fig1", 1, 0, "museum", 1.0))
        relations = detect_relations(t, type_columns(t, ta), {"museum"})
        assert [(r.subject_column, r.predicate, r.object_column)
                for r in relations] == [(0, LOCATED_IN, 1)]
