"""Tests for the hybrid (catalogue + web) annotator."""

import pytest

from repro.core.annotation import SnippetCache
from repro.core.config import AnnotatorConfig
from repro.core.hybrid import HybridAnnotator
from repro.kb.catalogue import Catalogue
from repro.synth.types import TYPE_SPECS
from repro.tables.model import Column, ColumnType, Table

ALL_KEYS = [spec.key for spec in TYPE_SPECS]


@pytest.fixture()
def hybrid(small_world, small_context):
    return HybridAnnotator(
        small_context.classifiers["svm"],
        small_world.search_engine,
        small_world.catalogue,
        AnnotatorConfig(),
        cache=SnippetCache(),
    )


def _museum_table(small_world, known_count=3, unknown_count=3):
    known = [e for e in small_world.table_entities("museum") if e.in_kb]
    unknown = [e for e in small_world.table_entities("museum") if not e.in_kb]
    entities = known[:known_count] + unknown[:unknown_count]
    return Table(
        name="hybrid-museums",
        columns=[Column("Name", ColumnType.TEXT)],
        rows=[[e.table_name] for e in entities],
    ), entities


class TestHybridAnnotator:
    def test_known_cells_skip_the_engine(self, small_world, hybrid):
        table, entities = _museum_table(small_world)
        queries_before = small_world.search_engine.query_count
        annotation = hybrid.annotate_table(table, ALL_KEYS)
        known = sum(1 for e in entities if e.in_kb)
        assert hybrid.stats.catalogue_hits >= known - 1  # name collisions may defer
        assert len(annotation.cells) >= known
        assert small_world.search_engine.query_count - queries_before == (
            hybrid.stats.web_queries
        )

    def test_unknown_cells_still_discovered(self, small_world, hybrid):
        table, entities = _museum_table(small_world, known_count=0, unknown_count=4)
        annotation = hybrid.annotate_table(table, ALL_KEYS)
        assert hybrid.stats.web_queries >= 4
        assert len(annotation.annotated_rows("museum")) >= 2

    def test_query_savings_reported(self, small_world, hybrid):
        table, _entities = _museum_table(small_world, known_count=4, unknown_count=2)
        hybrid.annotate_table(table, ALL_KEYS)
        assert 0.0 < hybrid.stats.query_savings <= 1.0

    def test_ambiguous_catalogue_names_fall_through_to_web(self, small_world,
                                                           small_context):
        catalogue = Catalogue()
        catalogue.add("Grand Hall", "museum")
        catalogue.add("Grand Hall", "theatre")  # ambiguous -> must use web
        annotator = HybridAnnotator(
            small_context.classifiers["svm"],
            small_world.search_engine,
            catalogue,
        )
        table = Table(
            name="amb", columns=[Column("Name", ColumnType.TEXT)],
            rows=[["Grand Hall"]],
        )
        annotator.annotate_table(table, ["museum", "theatre"])
        assert annotator.stats.catalogue_hits == 0
        assert annotator.stats.web_queries == 1

    def test_empty_types_rejected(self, hybrid, small_world):
        table, _ = _museum_table(small_world, 1, 0)
        with pytest.raises(ValueError):
            hybrid.annotate_table(table, [])

    def test_stats_empty_initially(self, small_world, small_context):
        annotator = HybridAnnotator(
            small_context.classifiers["svm"],
            small_world.search_engine,
            small_world.catalogue,
        )
        assert annotator.stats.query_savings == 0.0
        assert annotator.stats.total_cells == 0
