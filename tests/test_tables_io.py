"""Tests for table CSV/JSON serialisation."""

import pytest

from repro.tables.io import (
    table_from_csv,
    table_from_json,
    table_to_csv,
    table_to_json,
)
from repro.tables.model import Column, ColumnType, Table


@pytest.fixture()
def table():
    return Table(
        name="pois",
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("Address", ColumnType.LOCATION),
        ],
        rows=[["Melisse", "1104 Wilshire Blvd, Santa Monica"], ["Louvre", "Paris"]],
    )


class TestCsv:
    def test_roundtrip_preserves_everything(self, table):
        parsed = table_from_csv(table_to_csv(table), name="pois")
        assert parsed.rows == table.rows
        assert parsed.columns == table.columns
        assert parsed.name == "pois"

    def test_types_row_serialised(self, table):
        lines = table_to_csv(table).splitlines()
        assert lines[0] == "Name,Address"
        assert lines[1] == "Text,Location"

    def test_values_with_commas_quoted(self, table):
        text = table_to_csv(table)
        parsed = table_from_csv(text)
        assert parsed.cell(0, 1) == "1104 Wilshire Blvd, Santa Monica"

    def test_missing_types_row_rejected(self):
        with pytest.raises(ValueError):
            table_from_csv("Name,City\n")

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            table_from_csv("")

    def test_mismatched_header_widths_rejected(self):
        with pytest.raises(ValueError):
            table_from_csv("A,B\nText\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            table_from_csv("A\nGeometry\n")


class TestJson:
    def test_roundtrip(self, table):
        parsed = table_from_json(table_to_json(table))
        assert parsed.name == table.name
        assert parsed.columns == table.columns
        assert parsed.rows == table.rows

    def test_missing_key_rejected(self):
        with pytest.raises(ValueError):
            table_from_json('{"name": "x", "columns": []}')

    def test_numeric_row_values_coerced_to_str(self):
        text = (
            '{"name": "t", "columns": [{"name": "A", "type": "Number"}],'
            ' "rows": [[42]]}'
        )
        parsed = table_from_json(text)
        assert parsed.cell(0, 0) == "42"
