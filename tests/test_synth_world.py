"""Tests for entity populations, pages and the assembled world."""

import pytest

from repro.synth.entities import build_population
from repro.synth.geography import build_gazetteer, home_cities
from repro.synth.pages import (
    concept_pages,
    entity_pages,
    guide_pages,
    noise_pages,
    review_word_subset,
    sense_pages,
)
from repro.synth.types import TYPE_SPECS, type_spec
from repro.synth.world import SyntheticWorld, WorldConfig


@pytest.fixture(scope="module")
def cities():
    return home_cities(build_gazetteer())


class TestPopulations:
    def test_pool_sizes_scale(self, cities):
        spec = type_spec("restaurant")
        population = build_population(spec, seed=13, cities=cities, scale=0.1)
        assert len(population.kb_pool) == 24
        assert len(population.table_pool) == 29

    def test_kb_overlap_rate(self, cities):
        spec = type_spec("museum")
        population = build_population(spec, seed=13, cities=cities, scale=1.0,
                                      kb_overlap_rate=0.22)
        known = [e for e in population.table_pool if e.in_kb]
        assert len(known) == round(240 * 0.22)

    def test_all_entities_no_duplicates(self, cities):
        spec = type_spec("hotel")
        population = build_population(spec, seed=13, cities=cities, scale=0.3)
        uids = [e.uid for e in population.all_entities()]
        assert len(uids) == len(set(uids))

    def test_spatial_types_get_cities(self, cities):
        population = build_population(type_spec("school"), seed=13, cities=cities,
                                      scale=0.1)
        assert all(e.city is not None for e in population.kb_pool)

    def test_non_spatial_types_have_no_city(self, cities):
        population = build_population(type_spec("actor"), seed=13, cities=cities,
                                      scale=0.1)
        assert all(e.city is None for e in population.kb_pool)

    def test_ambiguity_rate_applied(self, cities):
        spec = type_spec("singer")
        population = build_population(spec, seed=13, cities=cities, scale=1.0)
        ambiguous = [e for e in population.table_pool if e.alternate_sense]
        rate = len(ambiguous) / len(population.table_pool)
        assert abs(rate - spec.ambiguity_rate) < 0.15

    def test_empty_cities_rejected(self):
        with pytest.raises(ValueError):
            build_population(type_spec("museum"), seed=13, cities=[])


class TestPages:
    @pytest.fixture(scope="class")
    def entity(self, cities):
        population = build_population(type_spec("restaurant"), seed=13,
                                      cities=cities, scale=0.05)
        return population.table_pool[0]

    def test_entity_page_count_matches(self, entity):
        pages = entity_pages(entity, seed=13)
        assert len(pages) == entity.page_count

    def test_homepage_title_carries_name(self, entity):
        pages = entity_pages(entity, seed=13)
        assert entity.name in pages[0].title

    def test_pages_deterministic(self, entity):
        assert entity_pages(entity, seed=13) == entity_pages(entity, seed=13)

    def test_body_contains_full_name(self, entity):
        page = entity_pages(entity, seed=13)[0]
        assert entity.name.split()[0].lower() in page.body.lower()

    def test_sense_pages_empty_without_ambiguity(self, entity):
        if entity.alternate_sense is None:
            assert sense_pages(entity, seed=13) == []

    def test_concept_pages_describe_type_word(self):
        pages = concept_pages(type_spec("museum"), seed=13, count=4)
        assert len(pages) == 4
        assert any("museum" in p.body for p in pages)

    def test_guide_pages_count(self):
        pages = guide_pages(type_spec("hotel"), 13, ["Lyon"])
        assert len(pages) == 25

    def test_noise_pages_have_no_urls_clash(self):
        pages = noise_pages(seed=13, count=30)
        assert len({p.url for p in pages}) == 30

    def test_review_subset_stable_and_type_specific(self):
        museum = review_word_subset(type_spec("museum"), seed=13)
        hotel = review_word_subset(type_spec("hotel"), seed=13)
        assert museum == review_word_subset(type_spec("museum"), seed=13)
        assert museum != hotel


class TestWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return SyntheticWorld.build(WorldConfig.small())

    def test_cached_per_config(self, world):
        assert SyntheticWorld.build(WorldConfig.small()) is world

    def test_twelve_populations(self, world):
        assert set(world.populations) == {spec.key for spec in TYPE_SPECS}

    def test_kb_has_positive_entities_per_type(self, world):
        for spec in TYPE_SPECS:
            entities = world.kb.positive_entities(spec.root_category, spec.type_word)
            assert entities, spec.key

    def test_noise_categories_excluded_from_positives(self, world):
        positives = world.kb.positive_categories("Museums", "museum")
        assert "Curators" not in positives
        assert "Curators" in world.kb.categories.descendants("Museums")

    def test_catalogue_coverage_near_paper_value(self, world):
        coverage = world.catalogue.coverage(world.all_table_entity_names())
        assert 0.1 < coverage < 0.35  # paper: 22 %

    def test_search_finds_entity_pages(self, world):
        entity = world.table_entities("museum")[0]
        results = world.search_engine.search(entity.table_name, k=5)
        assert results
        assert any(entity.name in r.title for r in results)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(entity_scale=0.0)
        with pytest.raises(ValueError):
            WorldConfig(kb_overlap_rate=2.0)
