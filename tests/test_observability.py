"""Tests for the observability layer (repro.observability).

The contracts under test:

* **spans** -- nesting records parent links and trace ids; the disabled
  path returns one shared no-op object and records nothing; the buffer
  is bounded; JSONL export and the per-stage summary round-trip;
* **metrics** -- the registry merge is associative and commutative
  (property-based), histograms refuse mismatched buckets, and the
  Prometheus text exposition parses line by line;
* **structured logging** -- every event is one JSON object carrying the
  event name and the active trace id;
* **diagnostics completeness** -- every ``RunDiagnostics`` /
  ``ServiceStats`` dataclass field reaches ``to_dict()`` /
  ``to_payload()``, and ``combined`` sums every per-part counter
  (introspected, so a new counter cannot silently go missing);
* **parity** -- annotations are byte-identical with tracing enabled at
  every tier (per-cell, batched, corpus, multi-worker pool, service),
  because spans only observe;
* **crash tolerance** -- a SIGKILLed pool worker yields a synthesised
  ``pool.task.aborted`` span on the parent, never a leaked open span.
"""

from __future__ import annotations

import json
import logging
import random
import re
from dataclasses import fields

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.core.results import RunDiagnostics, ServiceStats
from repro.observability import metrics as obs_metrics
from repro.observability import tracing
from repro.observability.log import get_logger
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import TraceBuffer, span
from repro.resilience import FaultPlan
from repro.service import protocol
from repro.service.daemon import AnnotationService, ServiceConfig
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = [f"Venue {i}" for i in range(24)]
_TYPE_KEYS = ["museum", "restaurant"]


@pytest.fixture(autouse=True)
def _clean_observability_state():
    """Every test starts (and leaves) with tracing off and metrics empty."""
    tracing.reset_tracing()
    obs_metrics.reset_registry()
    yield
    tracing.reset_tracing()
    obs_metrics.reset_registry()


def _make_engine(**kwargs) -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock(), **kwargs)
    rng = random.Random(0)
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
            )
            for name in _NAMES
            for i in range(4)
        ]
    )
    return engine


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    rng = random.Random(1)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_WORDS, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


def _corpus(n_tables=6, rows_per_table=3) -> list[Table]:
    tables = []
    for index in range(n_tables):
        table = Table(
            name=f"t{index}", columns=[Column("Name", ColumnType.TEXT)]
        )
        for row in range(rows_per_table):
            table.append_row(
                [_NAMES[(index * rows_per_table + row) % len(_NAMES)]]
            )
        tables.append(table)
    return tables


# ----------------------------------------------------------------------- spans


class TestSpans:
    def test_disabled_span_is_one_shared_noop(self):
        first = span("annotate.vote")
        second = span("search.search_many", n_queries=5)
        assert first is second  # the singleton: no per-call allocation
        with first:
            first.tag(extra=1)
        assert len(tracing.get_buffer()) == 0

    def test_nesting_records_parent_links_and_trace_id(self):
        trace_id = tracing.enable_tracing()
        with span("outer"):
            with span("middle"):
                with span("inner", depth=3):
                    pass
        records = tracing.get_buffer().snapshot()
        assert [r["name"] for r in records] == ["inner", "middle", "outer"]
        inner, middle, outer = records
        assert outer["parent_id"] is None
        assert middle["parent_id"] == outer["span_id"]
        assert inner["parent_id"] == middle["span_id"]
        assert {r["trace_id"] for r in records} == {trace_id}
        assert inner["tags"] == {"depth": 3}
        assert all(r["status"] == "ok" for r in records)
        assert all(r["wall_seconds"] >= 0.0 for r in records)

    def test_exception_marks_span_error_and_pops_stack(self):
        tracing.enable_tracing()
        with pytest.raises(ValueError):
            with span("will.fail"):
                raise ValueError("boom")
        (record,) = tracing.get_buffer().snapshot()
        assert record["status"] == "error"
        # The stack unwound: a following span is a root again.
        with span("next"):
            pass
        assert tracing.get_buffer().snapshot()[-1]["parent_id"] is None

    def test_thread_local_trace_id_overrides_default(self):
        default = tracing.enable_tracing()
        assert tracing.current_trace_id() == default
        tracing.set_trace_id("req-override")
        with span("handler"):
            pass
        tracing.set_trace_id(None)
        with span("loop"):
            pass
        handler, loop = tracing.get_buffer().snapshot()
        assert handler["trace_id"] == "req-override"
        assert loop["trace_id"] == default

    def test_buffer_is_bounded_and_counts_drops(self):
        buffer = TraceBuffer(max_spans=4)
        for i in range(7):
            buffer.append({"name": f"s{i}", "wall_seconds": 0.0})
        assert len(buffer) == 4
        assert buffer.dropped == 3
        assert [r["name"] for r in buffer.snapshot()] == ["s3", "s4", "s5", "s6"]

    def test_record_span_synthesises_finished_record(self):
        tracing.enable_tracing(trace_id="abc")
        tracing.record_span(
            "pool.task.aborted", 1.25, status="aborted", task_index=7
        )
        (record,) = tracing.get_buffer().snapshot()
        assert record["name"] == "pool.task.aborted"
        assert record["status"] == "aborted"
        assert record["wall_seconds"] == 1.25
        assert record["trace_id"] == "abc"
        assert record["tags"] == {"task_index": 7}

    def test_export_jsonl_and_summarize(self, tmp_path):
        tracing.enable_tracing()
        for _ in range(3):
            with span("stage.a"):
                pass
        tracing.record_span("stage.b", 2.0, status="aborted")
        path = tmp_path / "spans.jsonl"
        assert tracing.get_buffer().export_jsonl(str(path)) == 4
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        spans = [json.loads(line) for line in lines]
        rows = {row["name"]: row for row in tracing.summarize(spans)}
        assert rows["stage.a"]["count"] == 3
        assert rows["stage.b"]["aborted"] == 1
        assert rows["stage.b"]["wall_seconds"] == 2.0

    def test_virtual_seconds_recorded_when_clock_registered(self):
        clock = VirtualClock()
        tracing.enable_tracing()
        tracing.set_clock(clock)
        with span("search.search_many"):
            clock.charge(0.3)
            clock.charge(0.2)
        (record,) = tracing.get_buffer().snapshot()
        assert record["virtual_seconds"] == pytest.approx(0.5)


# --------------------------------------------------------------------- metrics


_METRIC_NAMES = ["a.hits", "b.miss", "c.depth"]

_ops = st.lists(
    st.tuples(
        st.sampled_from(["counter", "gauge", "histogram"]),
        st.sampled_from(_METRIC_NAMES),
        st.integers(min_value=0, max_value=12),
    ),
    max_size=12,
)


def _registry_from(ops) -> MetricsRegistry:
    registry = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "counter":
            registry.inc(name, value)
        elif kind == "gauge":
            registry.set_gauge(name, value)
        else:
            registry.observe(name, float(value))
    return registry


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.inc("pool.tasks")
        registry.inc("pool.tasks", 2)
        registry.set_gauge("queue.depth", 3)
        registry.set_gauge("queue.depth", 1)
        registry.observe("latency", 0.004)
        assert registry.counter_value("pool.tasks") == 3
        assert registry.gauge_value("queue.depth") == 1
        histogram = registry.histogram_value("latency")
        assert histogram.count == 1 and histogram.sum == 0.004
        with pytest.raises(ValueError):
            registry.inc("pool.tasks", -1)

    def test_histogram_bucket_mismatch_raises(self):
        left = Histogram((0.1, 1.0))
        right = Histogram((0.5, 5.0))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_semantics(self):
        worker = MetricsRegistry()
        worker.inc("pool.tasks", 2)
        worker.set_gauge("peak.rss", 100)
        worker.observe("seconds", 0.2)
        parent = MetricsRegistry()
        parent.inc("pool.tasks", 1)
        parent.set_gauge("peak.rss", 250)
        parent.observe("seconds", 3.0)
        parent.merge(worker)
        assert parent.counter_value("pool.tasks") == 3  # counters sum
        assert parent.gauge_value("peak.rss") == 250  # gauges high-water
        histogram = parent.histogram_value("seconds")
        assert histogram.count == 2  # histograms bucket-sum
        assert histogram.sum == pytest.approx(3.2)

    @settings(max_examples=60, deadline=None)
    @given(_ops, _ops, _ops)
    def test_merge_is_associative_and_commutative(self, ops_a, ops_b, ops_c):
        # Integer-valued observations keep the float sums exact, so the
        # dict comparison is equality, not approximation -- the same
        # contract RunDiagnostics.combined relies on for worker fold-in.
        a, b, c = map(_registry_from, (ops_a, ops_b, ops_c))
        left = MetricsRegistry.merged(
            [MetricsRegistry.merged([a, b]), c]
        ).to_dict()
        right = MetricsRegistry.merged(
            [a, MetricsRegistry.merged([b, c])]
        ).to_dict()
        assert left == right
        forward = MetricsRegistry.merged([a, b]).to_dict()
        backward = MetricsRegistry.merged([b, a]).to_dict()
        assert forward == backward

    def test_registry_round_trips_through_dict(self):
        registry = _registry_from(
            [("counter", "a.hits", 3), ("gauge", "c.depth", 2), ("histogram", "b.miss", 1)]
        )
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.to_dict() == registry.to_dict()

    def test_prometheus_exposition_parses(self):
        registry = MetricsRegistry()
        registry.inc("service.requests", 3)
        registry.set_gauge("service.pending_requests", 2)
        registry.observe("service.request_latency_seconds", 0.004)
        registry.observe("service.request_latency_seconds", 40.0)
        text = registry.render_prometheus()
        assert text.endswith("\n")
        assert "# TYPE repro_service_requests_total counter" in text
        assert "repro_service_requests_total 3" in text
        assert "repro_service_pending_requests 2" in text
        assert (
            "# TYPE repro_service_request_latency_seconds histogram" in text
        )
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9.+eE-]+$|^# TYPE .+$'
        )
        for line in text.strip().splitlines():
            assert sample.match(line), line
        # Cumulative bucket series: monotone, ending at the total count.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_service_request_latency_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 2
        assert "repro_service_request_latency_seconds_count 2" in text


# ----------------------------------------------------------- structured logging


class TestStructuredLog:
    def test_event_is_one_json_object(self, caplog):
        logger = get_logger("repro.test.observability")
        with caplog.at_level(logging.WARNING, logger="repro.test.observability"):
            logger.warning(
                "cache.file_unreadable", path="/x", outcome="starting cold"
            )
        (record,) = caplog.records
        payload = json.loads(record.message)
        assert payload["event"] == "cache.file_unreadable"
        assert payload["level"] == "warning"
        assert payload["outcome"] == "starting cold"
        assert "trace_id" not in payload  # tracing off -> byte-stable

    def test_trace_id_joins_log_events_when_tracing(self, caplog):
        trace_id = tracing.enable_tracing()
        logger = get_logger("repro.test.observability")
        with caplog.at_level(logging.INFO, logger="repro.test.observability"):
            logger.info("pool.schedule_planned", n_tasks=4)
        payload = json.loads(caplog.records[0].message)
        assert payload["trace_id"] == trace_id
        assert payload["n_tasks"] == 4


# ------------------------------------------------------ diagnostics completeness

# Run-level scheduler facts that combined() documents as NOT summable
# (stamped after the fold), plus the concatenated worker loads.
_NON_SUMMED = {"effective_chunk_cost", "tables_split", "worker_loads"}


def _diagnostics_with(offset: int) -> RunDiagnostics:
    values = {}
    for index, spec in enumerate(fields(RunDiagnostics)):
        if spec.name == "worker_loads":
            values[spec.name] = ()
        elif spec.type in ("float", float):
            values[spec.name] = float(offset + index)
        else:
            values[spec.name] = offset + index
    return RunDiagnostics(**values)


class TestDiagnosticsCompleteness:
    def test_to_dict_covers_every_field(self):
        diagnostics = _diagnostics_with(1)
        payload = diagnostics.to_dict()
        for spec in fields(RunDiagnostics):
            assert spec.name in payload, f"to_dict() misses {spec.name}"
            if spec.name not in _NON_SUMMED:
                assert payload[spec.name] == getattr(diagnostics, spec.name)
        assert "cache_hit_rate" in payload
        assert "imbalance_ratio" in payload
        json.dumps(payload)  # JSON-serialisable end to end

    def test_combined_sums_every_counter(self):
        a, b = _diagnostics_with(1), _diagnostics_with(100)
        combined = RunDiagnostics.combined([a, b])
        for spec in fields(RunDiagnostics):
            if spec.name in _NON_SUMMED:
                continue
            expected = getattr(a, spec.name) + getattr(b, spec.name)
            assert getattr(combined, spec.name) == expected, (
                f"combined() does not sum {spec.name}"
            )

    def test_service_stats_payload_covers_every_field(self):
        stats = ServiceStats(
            **{
                spec.name: index + 1
                for index, spec in enumerate(fields(ServiceStats))
            }
        )
        payload = stats.to_payload()
        for spec in fields(ServiceStats):
            assert spec.name in payload, f"to_payload() misses {spec.name}"
            assert payload[spec.name] == getattr(stats, spec.name)
        json.dumps(payload)

    def test_zero_denominator_guards(self):
        stats = ServiceStats()
        assert stats.mean_batch_size == 0.0
        assert stats.coalescing_ratio == 0.0
        assert stats.warm_hit_rate == 0.0
        diagnostics = RunDiagnostics(
            n_tables=0,
            n_cells=0,
            search_failures=0,
            cache_hits=0,
            cache_misses=0,
            queries_issued=0,
            clock_charges=0,
            virtual_seconds=0.0,
        )
        assert diagnostics.cache_hit_rate == 0.0
        assert diagnostics.imbalance_ratio == 0.0


# ------------------------------------------------------------- tracing parity


class TestTracingParity:
    def test_annotations_identical_with_tracing_enabled(self, classifier):
        """Spans only observe: per-cell, batched/corpus and pooled runs
        are byte-identical to their untraced references."""
        tables = _corpus()
        reference_run = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        reference_cells = [
            EntityAnnotator(
                classifier, _make_engine(), AnnotatorConfig()
            ).annotate_table(table, _TYPE_KEYS)
            for table in tables
        ]
        reference_batch = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_batch(tables, _TYPE_KEYS)

        tracing.enable_tracing()
        traced_cells = [
            EntityAnnotator(
                classifier, _make_engine(), AnnotatorConfig()
            ).annotate_table(table, _TYPE_KEYS)
            for table in tables
        ]
        assert traced_cells == reference_cells
        traced_batch = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_batch(tables, _TYPE_KEYS)
        assert traced_batch.annotations == reference_batch.annotations
        traced_run = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        assert dict(traced_run.tables) == dict(reference_run.tables)
        pooled = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert dict(pooled.tables) == dict(reference_run.tables)
        assert repr(sorted(pooled.tables.items())) == repr(
            sorted(reference_run.tables.items())
        )
        # The traced pooled run shipped per-task worker spans home.
        names = [r["name"] for r in tracing.get_buffer().snapshot()]
        assert "pool.run" in names
        assert "pool.task" in names

    def test_service_parity_with_tracing_enabled(self, classifier):
        table = _corpus(n_tables=1, rows_per_table=4)[0]
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_table(table, _TYPE_KEYS)
        tracing.enable_tracing()
        service = AnnotationService(
            EntityAnnotator(classifier, _make_engine(), AnnotatorConfig()),
            ServiceConfig(batch_window_ms=1.0),
        ).start()
        try:
            response = service.submit(
                protocol.annotate_table_request(
                    table, _TYPE_KEYS, "1", trace_id="req-trace-1"
                )
            )
        finally:
            service.stop()
        assert response.ok
        assert (
            protocol.annotation_from_payload(response.result["annotation"])
            == reference
        )


# --------------------------------------------------------- pool crash tolerance


class TestPoolCrashTracing:
    def test_killed_worker_yields_aborted_span_not_a_leak(
        self, classifier, tmp_path
    ):
        tables = _corpus(n_tables=8)
        engine = _make_engine()
        engine.fault_plan = FaultPlan(
            kill_on_query="Venue 5",
            kill_once_token=str(tmp_path / "kill.token"),
        )
        tracing.enable_tracing()
        run = EntityAnnotator(
            classifier, engine, AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS, workers=2)
        assert run.diagnostics.tasks_requeued >= 1
        records = tracing.get_buffer().snapshot()
        aborted = [r for r in records if r["name"] == "pool.task.aborted"]
        assert aborted, "the parent must synthesise the dead worker's span"
        assert all(r["status"] == "aborted" for r in aborted)
        assert all(r["tags"]["outcome"] == "requeued" for r in aborted)
        # No leaked open span: the parent's stack fully unwound, so a new
        # span is a root, and the pool.run span itself closed cleanly.
        with span("after"):
            pass
        assert tracing.get_buffer().snapshot()[-1]["parent_id"] is None
        assert any(
            r["name"] == "pool.run" and r["status"] == "ok" for r in records
        )
        # And the crash surfaced on the metrics registry.
        registry = obs_metrics.get_registry()
        assert registry.counter_value("pool.tasks_requeued") >= 1


# ------------------------------------------------------------- service surface


class TestServiceObservability:
    def test_metrics_request_returns_parseable_exposition(self, classifier):
        table = _corpus(n_tables=1, rows_per_table=3)[0]
        service = AnnotationService(
            EntityAnnotator(classifier, _make_engine(), AnnotatorConfig()),
            ServiceConfig(batch_window_ms=1.0),
        ).start()
        try:
            assert service.submit(
                protocol.annotate_table_request(table, _TYPE_KEYS, "1")
            ).ok
            response = service.submit(protocol.metrics_request("2"))
        finally:
            service.stop()
        assert response.ok
        text = response.result["exposition"]
        assert "# TYPE repro_service_requests_total counter" in text
        assert "repro_service_requests_annotate_table_total 1" in text
        assert (
            "# TYPE repro_service_request_latency_seconds histogram" in text
        )
        assert "repro_service_pending_requests" in text
        # Request latency histogram counted the annotate request.
        match = re.search(
            r"repro_service_annotate_latency_seconds_count (\d+)", text
        )
        assert match and int(match.group(1)) == 1

    def test_request_trace_links_admission_batch_and_stages(self, classifier):
        table = _corpus(n_tables=1, rows_per_table=3)[0]
        tracing.enable_tracing()
        service = AnnotationService(
            EntityAnnotator(classifier, _make_engine(), AnnotatorConfig()),
            ServiceConfig(batch_window_ms=1.0),
        ).start()
        try:
            assert service.submit(
                protocol.annotate_table_request(
                    table, _TYPE_KEYS, "1", trace_id="trace-xyz"
                )
            ).ok
        finally:
            service.stop()
        records = tracing.get_buffer().snapshot()
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        (request_span,) = by_name["service.request"]
        assert request_span["trace_id"] == "trace-xyz"
        (batch_span,) = by_name["service.batch"]
        # The batch span links back to the coalesced request's trace.
        assert "trace-xyz" in batch_span["tags"]["trace_ids"]
        # Per-stage engine work was traced inside the pooled pass.
        for stage in (
            "annotate.resolve_queries",
            "annotate.classify",
            "annotate.vote",
            "search.search_many",
        ):
            assert stage in by_name, f"missing {stage} span"
        # The admission->batch->stages chain covers the request's wall
        # time: the pooled pass accounts for (almost) everything the
        # request waited on beyond the batching window.
        assert batch_span["wall_seconds"] <= request_span["wall_seconds"]
        stage_wall = sum(r["wall_seconds"] for r in by_name["annotate.resolve_queries"])
        assert stage_wall <= batch_span["wall_seconds"]
