"""Statistical tests on the synthetic-world distributions.

The experiment shapes rest on distributional properties of the generated
world (type-word rates, marker prevalence, retrieval quality).  These tests
pin them so a generator change that would silently distort Table 1 fails
loudly here instead.
"""

import pytest

from repro.synth import pages as page_gen
from repro.synth.types import type_spec
from repro.text.tokenization import tokenize


class TestTypeWordRates:
    """type_word_in_page_rate drives the TIS baseline's shape."""

    @pytest.mark.parametrize("type_key", ["museum", "university", "singer"])
    def test_page_rate_matches_spec(self, small_world, type_key):
        # Restrict to entities whose name lacks the type word: their pages
        # carry it only through the injection controlled by the spec (the
        # verbatim name inside the body would otherwise count too).
        spec = type_spec(type_key)
        entities = [
            e for e in small_world.kb_entities(type_key)
            if spec.type_word not in tokenize(e.name)
        ][:25]
        assert entities
        pages = []
        for entity in entities:
            pages.extend(page_gen.entity_pages(entity, small_world.config.seed))
        with_word = sum(
            1 for page in pages if spec.type_word in tokenize(page.body)
        )
        rate = with_word / len(pages)
        assert abs(rate - spec.type_word_in_page_rate) < 0.15, (
            f"{type_key}: measured {rate:.2f}, "
            f"spec {spec.type_word_in_page_rate:.2f}"
        )


class TestMarkerPrevalence:
    def test_entity_pages_dominated_by_own_markers(self, small_world):
        from repro.synth.vocab import TYPE_MARKERS

        markers = set(TYPE_MARKERS["restaurant"])
        other = set(TYPE_MARKERS["museum"])
        entity = small_world.kb_entities("restaurant")[0]
        pages = page_gen.entity_pages(entity, small_world.config.seed)
        own = sum(
            sum(1 for t in tokenize(p.body) if t in markers) for p in pages
        )
        foreign = sum(
            sum(1 for t in tokenize(p.body) if t in other) for p in pages
        )
        assert own > 3 * foreign

    def test_guide_pages_weakly_typed(self, small_world):
        from repro.synth.vocab import TYPE_MARKERS

        spec = type_spec("hotel")
        markers = set(TYPE_MARKERS["hotel"])
        pages = page_gen.guide_pages(
            spec, small_world.config.seed, ["Lyon"], count=10
        )
        for page in pages:
            tokens = tokenize(page.body)
            density = sum(1 for t in tokens if t in markers) / len(tokens)
            # Weak evidence by construction: the margin classifier must be
            # able to abstain on windows drawn from these pages.
            assert density < 0.3


class TestLanguageMix:
    def test_small_french_fraction(self, small_world):
        pages = []
        for entity in small_world.kb_entities("museum")[:30]:
            pages.extend(page_gen.entity_pages(entity, small_world.config.seed))
        french = sum(1 for page in pages if page.language == "fr")
        assert 0 <= french / len(pages) < 0.12


class TestRetrievalQuality:
    def test_unambiguous_entity_owns_its_top_k(self, small_world):
        entity = next(
            e for e in small_world.table_entities("museum")
            if e.alternate_sense is None
        )
        results = small_world.search_engine.search(entity.table_name, k=10)
        own = sum(1 for r in results if entity.name in r.title)
        assert own > len(results) / 2

    def test_city_token_boosts_home_pages(self, small_world):
        entity = next(
            e for e in small_world.table_entities("restaurant")
            if e.city is not None and e.alternate_sense is None
        )
        plain = small_world.search_engine.search(entity.table_name, k=5)
        boosted = small_world.search_engine.search(
            f"{entity.table_name} {entity.city.name}", k=5
        )
        assert boosted  # the city never empties the result list
        own_boosted = sum(1 for r in boosted if entity.name in r.title)
        own_plain = sum(1 for r in plain if entity.name in r.title)
        assert own_boosted >= own_plain - 1

    def test_concept_word_returns_concept_like_pages(self, small_world):
        results = small_world.search_engine.search("museum", k=10)
        assert results
        # Top results for the bare type word are about the concept or
        # museum-heavy content, not arbitrary noise.
        from repro.synth.vocab import TYPE_MARKERS

        markers = set(TYPE_MARKERS["museum"]) | {"museum"}
        hits = sum(
            1 for r in results
            if any(t in markers for t in tokenize(r.snippet))
        )
        assert hits >= len(results) * 0.6


class TestGoldCountsAtFullScaleConfig:
    def test_scaled_counts_are_proportional(self, small_world):
        for type_key in ("restaurant", "singer"):
            spec = type_spec(type_key)
            expected = max(1, round(
                spec.table_references * small_world.config.entity_scale
            ))
            assert len(small_world.table_entities(type_key)) == expected
