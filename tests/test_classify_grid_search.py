"""Tests for k-fold cross-validation and grid search."""

import numpy as np
import pytest
from scipy import sparse

from repro.classify.grid_search import GridSearchResult, grid_search, k_fold_indices
from repro.classify.kernel_svm import KernelSVC


class TestKFold:
    def test_every_sample_validated_once(self):
        splits = k_fold_indices(23, n_folds=5, seed=1)
        validated = sorted(i for _train, valid in splits for i in valid)
        assert validated == list(range(23))

    def test_train_and_validation_disjoint(self):
        for train, valid in k_fold_indices(20, n_folds=4):
            assert set(train).isdisjoint(valid)
            assert sorted(set(train) | set(valid)) == list(range(20))

    def test_fold_sizes_balanced(self):
        splits = k_fold_indices(10, n_folds=3)
        sizes = sorted(len(valid) for _train, valid in splits)
        assert sizes == [3, 3, 4]

    def test_ten_folds_default(self):
        assert len(k_fold_indices(100)) == 10

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            k_fold_indices(3, n_folds=5)

    def test_minimum_two_folds(self):
        with pytest.raises(ValueError):
            k_fold_indices(10, n_folds=1)

    def test_deterministic_per_seed(self):
        assert k_fold_indices(12, seed=9) == k_fold_indices(12, seed=9)


class _MajorityStub:
    """Trivial estimator: predicts the majority training label."""

    def __init__(self, bias: float = 0.0) -> None:
        self.bias = bias
        self._majority = 1.0

    def fit(self, X, y):
        self._majority = 1.0 if np.sum(y > 0) >= len(y) / 2 else -1.0
        return self

    def predict(self, X):
        return np.full(X.shape[0], self._majority)


class TestGridSearch:
    def _data(self):
        X = sparse.csr_matrix(np.vstack([
            np.tile([1.0, 0.0], (10, 1)),
            np.tile([0.0, 1.0], (10, 1)),
        ]))
        y = np.asarray([1.0] * 10 + [-1.0] * 10)
        return X, y

    def test_finds_separating_parameters(self):
        X, y = self._data()
        result = grid_search(
            lambda cost, gamma: KernelSVC(cost=cost, gamma=gamma, kernel="rbf"),
            {"cost": [8.0], "gamma": [0.5, 8.0]},
            X, y, n_folds=4,
        )
        assert result.best_score > 0.9
        assert result.best_params["cost"] == 8.0

    def test_scores_recorded_per_combination(self):
        X, y = self._data()
        result = grid_search(
            lambda bias: _MajorityStub(bias),
            {"bias": [0.0, 1.0, 2.0]},
            X, y, n_folds=4,
        )
        assert len(result.scores) == 3
        assert all(0.0 <= s <= 1.0 for s in result.scores.values())

    def test_score_of_lookup(self):
        X, y = self._data()
        result = grid_search(
            lambda bias: _MajorityStub(bias), {"bias": [0.5]}, X, y, n_folds=4
        )
        assert result.score_of(bias=0.5) == result.best_score

    def test_empty_grid_rejected(self):
        X, y = self._data()
        with pytest.raises(ValueError):
            grid_search(lambda: None, {"cost": []}, X, y)

    def test_result_dataclass_roundtrip(self):
        result = GridSearchResult(best_params={"c": 1}, best_score=0.5)
        assert result.best_params == {"c": 1}
