"""Tests for the linear and kernel SVMs."""

import numpy as np
import pytest
from scipy import sparse

from repro.classify.kernel_svm import KernelSVC, linear_kernel, rbf_kernel
from repro.classify.linear_svm import LinearSVM


def _matrix(rows):
    return sparse.csr_matrix(np.asarray(rows, dtype=np.float64))


@pytest.fixture()
def separable():
    X = _matrix([[1.0, 0.0], [0.9, 0.1], [0.8, 0.0], [0.0, 1.0], [0.1, 0.9], [0.0, 0.8]])
    y = np.asarray([1.0, 1.0, 1.0, -1.0, -1.0, -1.0])
    return X, y


class TestLinearSVM:
    def test_separates_trivial_data(self, separable):
        X, y = separable
        model = LinearSVM().fit(X, y)
        assert np.array_equal(model.predict(X), y)

    def test_margins_signed_correctly(self, separable):
        X, y = separable
        model = LinearSVM().fit(X, y)
        assert np.all(model.decision_function(X) * y > 0)

    def test_deterministic(self, separable):
        X, y = separable
        first = LinearSVM().fit(X, y)
        second = LinearSVM().fit(X, y)
        assert np.allclose(first.weights_, second.weights_)
        assert first.intercept_ == second.intercept_

    def test_balanced_handles_imbalance(self):
        # 1 positive vs 30 negatives: unweighted hinge would give up on the
        # positive; the balanced default must not.
        rng = np.random.default_rng(5)
        negatives = rng.normal(loc=(-1.0, 0.0), scale=0.1, size=(30, 2))
        positives = np.asarray([[1.0, 0.0], [1.1, 0.1]])
        X = _matrix(np.vstack([positives, negatives]))
        y = np.asarray([1.0, 1.0] + [-1.0] * 30)
        model = LinearSVM(balanced=True).fit(X, y)
        assert np.all(model.predict(X[:2]) == 1.0)

    def test_rejects_non_binary_labels(self, separable):
        X, _ = separable
        with pytest.raises(ValueError):
            LinearSVM().fit(X, np.asarray([0.0, 1.0, 1.0, -1.0, -1.0, -1.0]))

    def test_rejects_shape_mismatch(self, separable):
        X, _ = separable
        with pytest.raises(ValueError):
            LinearSVM().fit(X, np.asarray([1.0, -1.0]))

    def test_unfitted_raises(self, separable):
        X, _ = separable
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(X)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            LinearSVM(regularization=0.0)
        with pytest.raises(ValueError):
            LinearSVM(max_iterations=0)


class TestKernels:
    def test_linear_kernel_is_dot_product(self):
        A = np.asarray([[1.0, 2.0]])
        B = np.asarray([[3.0, 4.0]])
        assert linear_kernel(A, B)[0, 0] == 11.0

    def test_rbf_kernel_is_one_on_diagonal(self):
        A = np.asarray([[1.0, 2.0], [0.5, 0.1]])
        K = rbf_kernel(A, A, gamma=2.0)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_kernel_decreases_with_distance(self):
        A = np.asarray([[0.0, 0.0]])
        near = np.asarray([[0.1, 0.0]])
        far = np.asarray([[2.0, 0.0]])
        assert rbf_kernel(A, near)[0, 0] > rbf_kernel(A, far)[0, 0]

    def test_rbf_bounded(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(5, 3))
        K = rbf_kernel(A, A)
        assert np.all(K <= 1.0 + 1e-12)
        assert np.all(K >= 0.0)


class TestKernelSVC:
    def test_separates_linear_data(self, separable):
        X, y = separable
        model = KernelSVC(kernel="linear", cost=10.0).fit(X, y)
        assert np.array_equal(model.predict(X), y)

    def test_rbf_solves_xor(self):
        # XOR is the canonical not-linearly-separable problem.
        X = _matrix([[0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [1.0, 0.0]])
        y = np.asarray([1.0, 1.0, -1.0, -1.0])
        model = KernelSVC(kernel="rbf", gamma=8.0, cost=8.0).fit(X, y)
        assert np.array_equal(model.predict(X), y)

    def test_support_vectors_subset_of_training(self, separable):
        X, y = separable
        model = KernelSVC(kernel="linear").fit(X, y)
        assert model.support_vectors_.shape[0] <= X.shape[0]
        assert model.support_vectors_.shape[0] >= 1

    def test_accepts_dense_input(self):
        X = np.asarray([[1.0, 0.0], [0.0, 1.0]])
        y = np.asarray([1.0, -1.0])
        model = KernelSVC(kernel="linear").fit(X, y)
        assert np.array_equal(model.predict(X), y)

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError):
            KernelSVC(kernel="poly")

    def test_rejects_empty_fit(self):
        with pytest.raises(ValueError):
            KernelSVC().fit(np.zeros((0, 2)), np.zeros(0))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KernelSVC().decision_function(np.zeros((1, 2)))

    def test_deterministic_for_seed(self, separable):
        X, y = separable
        first = KernelSVC(kernel="rbf", seed=3).fit(X, y)
        second = KernelSVC(kernel="rbf", seed=3).fit(X, y)
        assert np.allclose(
            first.decision_function(X), second.decision_function(X)
        )
