"""Tests for the GFT and Wiki Manual corpus builders."""

import pytest

from repro.synth.table_corpus import build_gft_corpus, build_wiki_manual
from repro.synth.types import TYPE_SPECS
from repro.tables.model import ColumnType


class TestGftCorpus:
    @pytest.fixture(scope="class")
    def corpus(self, small_context):
        return small_context.gft

    def test_gold_counts_match_scaled_pools(self, corpus, small_world):
        for spec in TYPE_SPECS:
            expected = len(small_world.table_entities(spec.key))
            assert corpus.gold.total_of_type(spec.key) == expected

    def test_every_gold_cell_value_matches_table(self, corpus):
        for ref in corpus.gold.references:
            table = corpus.table(ref.table_name)
            assert table.cell(ref.row, ref.column) == ref.cell_value

    def test_directory_tables_have_location_columns(self, corpus):
        directory = [t for t in corpus.tables if t.name == "gft-restaurant-1"]
        assert directory
        types = [c.column_type for c in directory[0].columns]
        assert ColumnType.LOCATION in types

    def test_mixed_tables_interleave_types(self, corpus):
        mixed = [t for t in corpus.tables if t.name.startswith("gft-mixed")]
        assert mixed
        gold_types = {
            ref.type_key
            for table in mixed
            for ref in corpus.gold.of_table(table.name)
        }
        assert len(gold_types) >= 2

    def test_people_tables_have_occupation_labels(self, corpus):
        singer_tables = [t for t in corpus.tables if "singer" in t.name]
        assert singer_tables
        occupations = set(
            singer_tables[0].column_values(
                singer_tables[0].column_index("Occupation")
            )
        )
        assert "Singer" in occupations

    def test_deterministic(self, small_world):
        first = build_gft_corpus(small_world)
        second = build_gft_corpus(small_world)
        assert [t.rows for t in first.tables] == [t.rows for t in second.tables]

    def test_table_lookup_by_name(self, corpus):
        name = corpus.tables[0].name
        assert corpus.table(name).name == name
        with pytest.raises(KeyError):
            corpus.table("nope")

    def test_average_rows_positive(self, corpus):
        assert corpus.average_rows() > 0


class TestWikiCorpus:
    @pytest.fixture(scope="class")
    def corpus(self, small_context):
        return small_context.wiki

    def test_thirty_six_tables(self, corpus):
        assert len(corpus.tables) == 36

    def test_all_columns_text(self, corpus):
        for table in corpus.tables:
            assert all(c.column_type is ColumnType.TEXT for c in table.columns)

    def test_high_catalogue_coverage(self, corpus, small_world):
        names = [ref.cell_value for ref in corpus.gold.references]
        coverage = small_world.catalogue.coverage(names)
        assert coverage > 0.6

    def test_no_duplicate_names_within_table(self, corpus):
        for table in corpus.tables:
            names = table.column_values(0)
            assert len(names) == len(set(names))

    def test_gold_types_span_the_cycle(self, corpus):
        assert len(set(corpus.gold.type_keys())) >= 10
