"""Parity regression: the batched annotation path versus the per-cell path.

The batched engine (``EntityAnnotator.annotate_table`` default) must be a
pure optimisation: identical :class:`TableAnnotation` output *and*
identical virtual-clock accounting to the retained seed per-cell loop, in
every scenario the pipeline supports -- plain tables, spatial
disambiguation, engine failure injection, and tables with repeated cell
values served through a shared :class:`SnippetCache`.
"""

import random

import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotation import SnippetCache
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.eval import experiments
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_MUSEUM_WORDS = "exhibit gallery paintings curator collection museum".split()
_RESTAURANT_WORDS = "menu chef cuisine dining wine tasting".split()
_NAMES = ["Grand Gallery", "Stone Hall", "Blue Door", "Old Mill", "River House"]


def _make_engine(**kwargs) -> SearchEngine:
    """A small deterministic corpus: museum-ish pages for five entities."""
    engine = SearchEngine(clock=VirtualClock(), **kwargs)
    rng = random.Random(0)
    pages = []
    for name in _NAMES:
        for i in range(8):
            pages.append(
                WebPage(
                    url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                    title=name,
                    body=f"{name.lower()} "
                    + " ".join(rng.choices(_MUSEUM_WORDS, k=30)),
                )
            )
    engine.add_pages(pages)
    return engine


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    rng = random.Random(1)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_MUSEUM_WORDS, k=12)), "museum")
        dataset.add(" ".join(rng.choices(_RESTAURANT_WORDS, k=12)), "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


def _table(values) -> Table:
    table = Table(name="parity", columns=[Column("Name", ColumnType.TEXT)])
    for value in values:
        table.append_row([value])
    return table


def _annotate_both(table, classifier, engine_factory, config=None, cache_factory=None):
    """Run both paths on separate-but-identical engines; return outcomes."""
    outcomes = []
    for path in ("batch", "per_cell"):
        engine = engine_factory()
        cache = cache_factory() if cache_factory is not None else None
        annotator = EntityAnnotator(
            classifier, engine, config or AnnotatorConfig(), cache=cache
        )
        if path == "batch":
            annotation = annotator.annotate_table(table, ["museum", "restaurant"])
        else:
            annotation = annotator._annotate_table_per_cell(
                table, ["museum", "restaurant"]
            )
        outcomes.append(
            {
                "annotation": annotation,
                "charges": engine.clock.n_charges,
                "seconds": engine.clock.elapsed_seconds,
                "queries": engine.query_count,
                "failures": annotator.search_failures,
                "cache": cache,
            }
        )
    return outcomes


def _assert_parity(batch, per_cell):
    assert batch["annotation"] == per_cell["annotation"]
    assert batch["charges"] == per_cell["charges"]
    assert batch["seconds"] == per_cell["seconds"]
    assert batch["queries"] == per_cell["queries"]
    assert batch["failures"] == per_cell["failures"]


class TestPlainParity:
    def test_distinct_values(self, classifier):
        table = _table(_NAMES)
        batch, per_cell = _annotate_both(table, classifier, _make_engine)
        _assert_parity(batch, per_cell)
        assert len(batch["annotation"].cells) > 0

    def test_unknown_values_unannotated(self, classifier):
        table = _table(["Nonexistent Place", "Another Missing"])
        batch, per_cell = _annotate_both(table, classifier, _make_engine)
        _assert_parity(batch, per_cell)
        assert len(batch["annotation"].cells) == 0


class TestRepeatedValuesParity:
    def test_shared_cache_dedupes_identically(self, classifier):
        # With a shared SnippetCache both paths collapse repeats the same
        # way: charges, virtual seconds and cache counters all agree.
        table = _table(_NAMES * 3)
        batch, per_cell = _annotate_both(
            table, classifier, _make_engine, cache_factory=SnippetCache
        )
        _assert_parity(batch, per_cell)
        assert batch["queries"] == len(_NAMES)
        assert batch["cache"].hits == per_cell["cache"].hits
        assert batch["cache"].misses == per_cell["cache"].misses

    def test_without_cache_batch_dedupes_by_design(self, classifier):
        # Without a cache the paths intentionally diverge in accounting:
        # the batched engine issues each unique query string once (the
        # protocol-level dedup is the optimisation), while the seed
        # per-cell loop pays one request per occurrence.  Annotations
        # still match exactly.
        table = _table(_NAMES * 3)
        batch, per_cell = _annotate_both(table, classifier, _make_engine)
        assert batch["annotation"] == per_cell["annotation"]
        assert batch["queries"] == len(_NAMES)
        assert per_cell["queries"] == len(_NAMES) * 3


class TestFailureParity:
    def test_engine_down(self, classifier):
        def down_engine():
            engine = _make_engine()
            engine.available = False
            return engine

        table = _table(_NAMES)
        batch, per_cell = _annotate_both(table, classifier, down_engine)
        _assert_parity(batch, per_cell)
        assert batch["failures"] == len(_NAMES)
        # Even failed requests charge latency, in both paths.
        assert batch["charges"] == len(_NAMES)

    def test_failure_injection_same_rng_stream(self, classifier):
        # Distinct values: both paths issue one request per cell, drawing
        # from identical failure-injection rng streams (same engine seed).
        table = _table(_NAMES)
        batch, per_cell = _annotate_both(
            table, classifier, lambda: _make_engine(failure_rate=0.4, seed=7)
        )
        _assert_parity(batch, per_cell)

    def test_repeated_values_with_failures_count_misses_like_per_cell(
        self, classifier
    ):
        # The one scenario where the paths legitimately diverge in engine
        # charges: a failed query's duplicates are retried per cell but
        # fail once per batch.  Decisions and cache *counters* still agree.
        table = _table(_NAMES * 2)

        def down_engine():
            engine = _make_engine()
            engine.available = False
            return engine

        batch, per_cell = _annotate_both(
            table, classifier, down_engine, cache_factory=SnippetCache
        )
        assert batch["annotation"] == per_cell["annotation"]
        assert batch["failures"] == per_cell["failures"] == len(_NAMES) * 2
        assert batch["cache"].misses == per_cell["cache"].misses
        assert batch["cache"].hits == per_cell["cache"].hits == 0
        # Charges differ by design: one shared request per unique query in
        # the batch, one retry per duplicate cell in the per-cell path.
        assert batch["charges"] == len(_NAMES)
        assert per_cell["charges"] == len(_NAMES) * 2

    def test_failed_query_not_cached(self, classifier):
        engine = _make_engine()
        engine.available = False
        cache = SnippetCache()
        annotator = EntityAnnotator(
            classifier, engine, AnnotatorConfig(), cache=cache
        )
        annotator.annotate_table(_table(["Grand Gallery"]), ["museum"])
        engine.available = True
        annotation = annotator.annotate_table(_table(["Grand Gallery"]), ["museum"])
        assert len(annotation.cells) == 1  # retried and succeeded


class TestSpatialParity:
    def test_disambiguation_contexts(self, small_context):
        table = experiments._efficiency_table(small_context, 25)
        config = AnnotatorConfig(use_spatial_disambiguation=True)
        world = small_context.world
        results = []
        for path in ("batch", "per_cell"):
            annotator = EntityAnnotator(
                small_context.classifiers["svm"],
                world.search_engine,
                config,
                geocoder=world.geocoder,
            )
            before = (world.clock.n_charges, world.clock.elapsed_seconds)
            if path == "batch":
                annotation = annotator.annotate_table(table, experiments.ALL_TYPE_KEYS)
            else:
                annotation = annotator._annotate_table_per_cell(
                    table, experiments.ALL_TYPE_KEYS
                )
            results.append(
                (
                    annotation,
                    world.clock.n_charges - before[0],
                    world.clock.elapsed_seconds - before[1],
                )
            )
        assert results[0] == results[1]


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["svm", "bayes"])
    def test_backends_agree_across_paths(self, backend):
        rng = random.Random(2)
        dataset = TextDataset()
        for _ in range(50):
            dataset.add(" ".join(rng.choices(_MUSEUM_WORDS, k=12)), "museum")
            dataset.add(" ".join(rng.choices(_RESTAURANT_WORDS, k=12)), "restaurant")
        classifier = SnippetTypeClassifier(backend=backend, min_count=1).fit(dataset)
        table = _table(_NAMES * 2)
        batch, per_cell = _annotate_both(
            table, classifier, _make_engine, cache_factory=SnippetCache
        )
        _assert_parity(batch, per_cell)
