"""Tests for gold standard, evaluator and text reporting."""

import pytest

from repro.core.results import AnnotationRun, CellAnnotation
from repro.eval.evaluator import evaluate_annotations
from repro.eval.gold import GoldEntityReference, GoldStandard
from repro.eval.reporting import format_cell, format_table


def _gold():
    gold = GoldStandard()
    gold.add(GoldEntityReference("t1", 0, 0, "museum", "Louvre"))
    gold.add(GoldEntityReference("t1", 1, 0, "museum", "Orsay"))
    gold.add(GoldEntityReference("t1", 2, 0, "hotel", "Ritz"))
    gold.add(GoldEntityReference("t2", 0, 0, "museum", "Uffizi"))
    return gold


class TestGoldStandard:
    def test_lookup(self):
        gold = _gold()
        assert gold.lookup("t1", 0, 0).cell_value == "Louvre"
        assert gold.lookup("t1", 9, 9) is None

    def test_totals_per_type(self):
        gold = _gold()
        assert gold.total_of_type("museum") == 3
        assert gold.total_of_type("hotel") == 1
        assert gold.total_of_type("airport") == 0

    def test_of_table(self):
        assert len(_gold().of_table("t1")) == 3

    def test_duplicate_cell_rejected(self):
        gold = _gold()
        with pytest.raises(ValueError):
            gold.add(GoldEntityReference("t1", 0, 0, "hotel", "X"))

    def test_type_keys_sorted(self):
        assert _gold().type_keys() == ["hotel", "museum"]


class TestEvaluator:
    def _run(self, annotations):
        run = AnnotationRun()
        for table, row, col, type_key in annotations:
            run.add(CellAnnotation(table, row, col, type_key, 0.9))
        return run

    def test_perfect_run(self):
        run = self._run([
            ("t1", 0, 0, "museum"), ("t1", 1, 0, "museum"),
            ("t1", 2, 0, "hotel"), ("t2", 0, 0, "museum"),
        ])
        result = evaluate_annotations(run, _gold())
        assert result.per_type["museum"].f1 == 1.0
        assert result.per_type["hotel"].f1 == 1.0
        assert result.micro_f1() == 1.0

    def test_wrong_type_costs_both_sides(self):
        run = self._run([("t1", 2, 0, "museum")])  # hotel cell called museum
        result = evaluate_annotations(run, _gold())
        museum = result.per_type["museum"]
        assert museum.precision == 0.0
        assert result.per_type["hotel"].recall == 0.0

    def test_non_gold_cell_is_false_positive(self):
        run = self._run([("t1", 0, 1, "museum")])
        result = evaluate_annotations(run, _gold())
        assert result.per_type["museum"].n_predicted == 1
        assert result.per_type["museum"].n_correct == 0

    def test_empty_run_zero_recall(self):
        result = evaluate_annotations(AnnotationRun(), _gold())
        assert result.per_type["museum"].recall == 0.0

    def test_average_over_selected_types(self):
        run = self._run([("t1", 0, 0, "museum"), ("t1", 1, 0, "museum"),
                         ("t2", 0, 0, "museum")])
        result = evaluate_annotations(run, _gold())
        p, r, f = result.average(["museum"])
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_accepts_plain_cell_iterable(self):
        cells = [CellAnnotation("t1", 0, 0, "museum", 1.0)]
        result = evaluate_annotations(cells, _gold(), ["museum"])
        assert result.per_type["museum"].n_correct == 1

    def test_f1_of_unknown_type(self):
        result = evaluate_annotations(AnnotationRun(), _gold())
        assert result.f1_of("airport") == 0.0


class TestReporting:
    def test_format_cell_variants(self):
        assert format_cell(None) == "-"
        assert format_cell(0.5) == "0.50"
        assert format_cell(12) == "12"
        assert format_cell("x") == "x"

    def test_format_table_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, None]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "----" in lines[1]
        assert lines[3].startswith("10")
        assert lines[3].endswith("-")

    def test_title_prepended(self):
        text = format_table(["x"], [["v"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_columns_aligned(self):
        text = format_table(["name", "f"], [["long-value", 0.123], ["x", 1.0]])
        lines = text.splitlines()
        assert lines[2].index("0.12") == lines[3].index("1.00")
