"""Parity and contracts of the pluggable cache storage backends.

The sharded disk store (:class:`repro.persistence.ShardedDiskCacheStore`)
must be a pure *storage* change, exactly as the frozen mmap index backend
is for the index layer: where the results cache and label memo persist
may change, never what any layer above computes.  This suite pins:

* the store contract -- round-trip through put/flush/merge/reopen for
  arbitrary picklable values, the pending -> delta -> bucket read tiers,
  pickling by path (unflushed puts do not travel), and
  ``compact_path`` staying loud on a store that is not one;
* delta compaction -- :meth:`merge` rewrites only the bucket files the
  append log touches, leaving every other bucket byte-untouched;
* the robustness conventions -- a truncated delta tail (writer SIGKILLed
  mid-append) keeps every whole record before it, a corrupt bucket file
  serves cold instead of crashing, and a fingerprint mismatch
  invalidates the store;
* the attach guards -- a store opened against a foreign fingerprint is
  refused by the engine and the label memo alike;
* annotation parity at every granularity -- per-cell path, batched
  in-process runs, ``workers=2`` pools under both ``fork`` and
  ``spawn`` warm-starting from shared cache directories, and the
  resident service -- byte-identical between ``cache_backend="memory"``
  and ``"disk"``, with the new cache diagnostics observable on
  :class:`~repro.core.results.RunDiagnostics`.
"""

import dataclasses
import os
import pickle
import random

import numpy as np
import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotator import (
    ENGINE_CACHE_STORE,
    LABEL_MEMO_STORE,
    EntityAnnotator,
)
from repro.core.config import AnnotatorConfig
from repro.core.parallel import annotate_tables_parallel
from repro.persistence import (
    ArtifactError,
    CacheStore,
    MemoryCacheStore,
    ShardedDiskCacheStore,
    load_cache_payload,
    open_cache_store,
)
from repro.service import protocol
from repro.service.daemon import AnnotationService, ServiceConfig
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_WORDS = "exhibit gallery paintings curator collection museum".split()
_NAMES = [f"Venue {i}" for i in range(24)]
_TYPE_KEYS = ["museum", "restaurant"]
_KIND = "test-cache"
_FINGERPRINT = ("corpus", 24, "k1")


def _make_engine() -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock())
    rng = random.Random(0)
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(_WORDS, k=30)),
            )
            for name in _NAMES
            for i in range(4)
        ]
    )
    return engine


def _train(seed=1) -> SnippetTypeClassifier:
    rng = random.Random(seed)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_WORDS, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


def _corpus(n_tables=6, rows_per_table=3) -> list[Table]:
    """Distinct-content corpus: every table names its own venues."""
    tables = []
    for index in range(n_tables):
        table = Table(
            name=f"t{index}", columns=[Column("Name", ColumnType.TEXT)]
        )
        for row in range(rows_per_table):
            table.append_row([_NAMES[(index * rows_per_table + row) % len(_NAMES)]])
        tables.append(table)
    return tables


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    return _train()


def _disk_store(path, **overrides) -> ShardedDiskCacheStore:
    kwargs = {"fingerprint": _FINGERPRINT, "n_buckets": 8}
    kwargs.update(overrides)
    return ShardedDiskCacheStore(path, _KIND, **kwargs)


def _bucket_files(store_path) -> dict[str, int]:
    """Bucket file -> ``st_mtime_ns``, the untouched-bucket witness."""
    from pathlib import Path

    return {
        path.name: os.stat(path).st_mtime_ns
        for path in sorted(Path(store_path).glob("bucket-*.reprocache"))
    }


def _normalised(diagnostics):
    """Diagnostics with the run-order-dependent parts blanked (per-worker
    loads are real measurements; ``virtual_seconds`` sums over tasks in
    completion order, so its last float bit varies run to run)."""
    return dataclasses.replace(
        diagnostics, worker_loads=(), virtual_seconds=0.0
    )


# ---------------------------------------------------------------------- store contract


class TestStoreContract:
    def test_satisfies_the_store_protocol(self, tmp_path):
        disk = _disk_store(tmp_path / "a.cachestore")
        memory = MemoryCacheStore(tmp_path / "a.cache", _KIND, _FINGERPRINT)
        assert isinstance(disk, CacheStore)
        assert isinstance(memory, CacheStore)
        assert disk.backend_name == "disk"
        assert memory.backend_name == "memory"

    def test_open_cache_store_dispatches(self, tmp_path):
        disk = open_cache_store(
            "disk", tmp_path / "a.cachestore", _KIND, _FINGERPRINT
        )
        memory = open_cache_store("memory", tmp_path / "a.cache", _KIND, None)
        assert isinstance(disk, ShardedDiskCacheStore)
        assert isinstance(memory, MemoryCacheStore)
        with pytest.raises(ValueError):
            open_cache_store("tape", tmp_path / "a", _KIND, None)

    def test_round_trip_arbitrary_values(self, tmp_path):
        path = tmp_path / "a.cachestore"
        store = _disk_store(path)
        values = {
            "text": "snippet text",
            "tuple": (("doc", 3), ("doc", 7)),
            "dict": {"k": [1, 2, 3]},
            "norms": np.linspace(0.0, 1.0, 17),
        }
        for key, value in values.items():
            store.put(key, value)
        assert store.flush() > 0
        assert store.merge() > 0
        reopened = _disk_store(path)
        assert reopened.has_entries()
        for key, value in values.items():
            got = reopened.get(key)
            if isinstance(value, np.ndarray):
                np.testing.assert_array_equal(got, value)
            else:
                assert got == value
        assert not reopened.contains("absent")
        assert reopened.get("absent", "fallback") == "fallback"

    def test_read_tiers_pending_over_delta_over_bucket(self, tmp_path):
        path = tmp_path / "a.cachestore"
        store = _disk_store(path)
        store.put("k", "bucketed")
        store.flush()
        store.merge()
        store.put("k", "deltaed")
        store.flush()
        assert store.get("k") == "deltaed"
        store.put("k", "pending")
        assert store.get("k") == "pending"
        # A reopen sees only what was flushed: the delta log wins over
        # the bucket, the unflushed put never travelled.
        assert _disk_store(path).get("k") == "deltaed"

    def test_pickles_by_path_only(self, tmp_path):
        path = tmp_path / "a.cachestore"
        store = _disk_store(path)
        store.put("persisted", 1)
        store.flush()
        store.put("unflushed", 2)
        payload = pickle.dumps(store, pickle.HIGHEST_PROTOCOL)
        assert len(payload) < 512  # a path, not the entries
        clone = pickle.loads(payload)
        assert clone.get("persisted") == 1
        assert clone.get("unflushed") is None

    def test_flush_of_nothing_is_zero_bytes(self, tmp_path):
        store = _disk_store(tmp_path / "a.cachestore")
        store.put("k", 1)
        assert store.flush() > 0
        assert store.flush() == 0
        assert store.merge() == 1
        assert store.merge() == 0

    def test_compact_path_folds_and_stays_loud(self, tmp_path):
        path = tmp_path / "a.cachestore"
        store = _disk_store(path)
        store.put("k", "v")
        store.flush()
        assert ShardedDiskCacheStore.compact_path(path) == 1
        assert _disk_store(path).get("k") == "v"
        with pytest.raises(ArtifactError):
            ShardedDiskCacheStore.compact_path(tmp_path / "absent.cachestore")

    def test_memory_store_reads_legacy_payload_files(self, tmp_path):
        # The memory backend must stay byte-compatible with files the
        # legacy save paths wrote (same container, same guards).
        path = tmp_path / "legacy.cache"
        first = MemoryCacheStore(path, _KIND, _FINGERPRINT)
        first.put("k", ("v", 1))
        assert first.flush() > 0
        assert load_cache_payload(path, _KIND, _FINGERPRINT) == {"k": ("v", 1)}
        assert MemoryCacheStore(path, _KIND, _FINGERPRINT).get("k") == ("v", 1)


# ------------------------------------------------------------------- delta compaction


class TestDeltaCompaction:
    def test_merge_rewrites_only_touched_buckets(self, tmp_path):
        path = tmp_path / "a.cachestore"
        store = _disk_store(path)
        for index in range(64):
            store.put(f"key-{index}", index)
        store.flush()
        assert store.merge() == 8  # every bucket occupied
        before = _bucket_files(path)
        grown = _disk_store(path)
        grown.put("one-new-key", "delta")
        grown.flush()
        assert grown.merge() == 1
        after = _bucket_files(path)
        changed = [
            name for name, mtime in after.items() if before.get(name) != mtime
        ]
        assert len(changed) == 1  # the one bucket the new key hashes to
        assert len(after) == len(before)
        reopened = _disk_store(path)
        assert reopened.get("one-new-key") == "delta"
        assert reopened.get("key-13") == 13

    def test_loaded_bytes_stays_small_until_probed(self, tmp_path):
        path = tmp_path / "a.cachestore"
        store = _disk_store(path)
        for index in range(64):
            store.put(f"key-{index}", "x" * 256)
        store.flush()
        store.merge()
        reopened = _disk_store(path)
        attach_bytes = reopened.loaded_bytes
        reopened.get("key-0")
        assert reopened.loaded_bytes > attach_bytes  # one bucket paged in
        # Attaching read only the manifest + compacted log, not the 16 KB
        # of bucket payload.
        assert attach_bytes < 2048


# ----------------------------------------------------------------------- robustness


class TestRobustness:
    def test_truncated_delta_tail_keeps_whole_records(self, tmp_path):
        path = tmp_path / "a.cachestore"
        store = _disk_store(path)
        for index in range(5):
            store.put(f"k{index}", f"v{index}")
        store.flush()
        log = path / "delta.log"
        log.write_bytes(log.read_bytes()[:-3])  # writer died mid-append
        survivor = _disk_store(path)
        for index in range(4):
            assert survivor.get(f"k{index}") == f"v{index}"
        assert survivor.get("k4") is None  # the torn tail starts cold
        # The next flush + merge proceeds normally on top of the tear.
        survivor.put("k4", "again")
        survivor.flush()
        assert survivor.merge() >= 1
        assert _disk_store(path).get("k4") == "again"

    def test_corrupt_bucket_serves_cold_not_crash(self, tmp_path):
        path = tmp_path / "a.cachestore"
        store = _disk_store(path, n_buckets=1)
        store.put("k", "v")
        store.flush()
        store.merge()
        (path / "bucket-0000.reprocache").write_bytes(b"garbage")
        assert _disk_store(path, n_buckets=1).get("k") is None

    def test_fingerprint_mismatch_invalidates_the_store(self, tmp_path):
        path = tmp_path / "a.cachestore"
        store = _disk_store(path)
        store.put("k", "v")
        store.flush()
        store.merge()
        foreign = _disk_store(path, fingerprint=("corpus", 25, "k1"))
        assert not foreign.has_entries()
        assert foreign.get("k") is None
        # The stale entries answer a world that no longer exists: the
        # foreign store's first flush resets the layout wholesale.
        foreign.put("k", "new-world")
        foreign.flush()
        assert _disk_store(
            path, fingerprint=("corpus", 25, "k1")
        ).get("k") == "new-world"
        assert not _disk_store(path).has_entries()


# --------------------------------------------------------------------- attach guards


class TestAttachGuards:
    def test_engine_refuses_foreign_fingerprint(self, tmp_path):
        engine = _make_engine()
        store = ShardedDiskCacheStore(
            tmp_path / ENGINE_CACHE_STORE,
            "search-results",
            fingerprint=("some", "other", "world"),
        )
        with pytest.raises(ValueError):
            engine.attach_results_store(store)
        assert engine.results_store is None

    def test_label_memo_refuses_foreign_fingerprint(self, classifier, tmp_path):
        annotator = EntityAnnotator(classifier, _make_engine(), AnnotatorConfig())
        store = ShardedDiskCacheStore(
            tmp_path / LABEL_MEMO_STORE,
            "label-memo",
            fingerprint=("some", "other", "classifier"),
        )
        with pytest.raises(ValueError):
            annotator.cell_annotator.attach_label_store(store)
        assert annotator.cell_annotator.label_store is None

    def test_matching_fingerprints_attach_and_flush(self, classifier, tmp_path):
        engine = _make_engine()
        annotator = EntityAnnotator(classifier, engine, AnnotatorConfig())
        engine.attach_results_store(
            ShardedDiskCacheStore(
                tmp_path / ENGINE_CACHE_STORE,
                "search-results",
                fingerprint=engine.cache_fingerprint(),
            )
        )
        annotator.cell_annotator.attach_label_store(
            ShardedDiskCacheStore(
                tmp_path / LABEL_MEMO_STORE,
                "label-memo",
                fingerprint=classifier.fingerprint(),
            )
        )
        annotator.annotate_table(_corpus(n_tables=1)[0], _TYPE_KEYS)
        assert engine.flush_results_store() > 0
        assert annotator.cell_annotator.flush_label_store() > 0
        assert engine.results_store.has_entries()
        assert annotator.cell_annotator.label_store.has_entries()


# ----------------------------------------------------------------- annotation parity


class TestAnnotationParity:
    def test_batched_runs_cold_and_warm(self, classifier, tmp_path):
        tables = _corpus()
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)
        disk_config = AnnotatorConfig(cache_backend="disk", cache_buckets=8)
        cold = EntityAnnotator(
            classifier, _make_engine(), disk_config
        ).annotate_tables(tables, _TYPE_KEYS, cache_dir=tmp_path)
        warm = EntityAnnotator(
            classifier, _make_engine(), disk_config
        ).annotate_tables(tables, _TYPE_KEYS, cache_dir=tmp_path)
        assert cold == reference
        assert warm == reference
        assert repr(sorted(warm.tables.items())) == repr(
            sorted(reference.tables.items())
        )
        # In-process runs have no measured loads, so the diagnostics must
        # agree outright (cache-traffic fields are excluded from
        # comparisons by design -- they describe IO, not annotations).
        assert cold.diagnostics == reference.diagnostics
        assert warm.diagnostics == reference.diagnostics

    def test_per_cell_path_warm_from_store(self, classifier, tmp_path):
        table = _corpus(n_tables=2)[1]
        disk_config = AnnotatorConfig(cache_backend="disk", cache_buckets=8)
        seeder = EntityAnnotator(classifier, _make_engine(), disk_config)
        seeder.annotate_tables(_corpus(), _TYPE_KEYS, cache_dir=tmp_path)
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        )._annotate_table_per_cell(table, _TYPE_KEYS)
        warm = EntityAnnotator(classifier, _make_engine(), disk_config)
        warm.load_caches(tmp_path)
        assert repr(
            warm._annotate_table_per_cell(table, _TYPE_KEYS)
        ) == repr(reference)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_workers_identical_under_both_start_methods(
        self, classifier, tmp_path, start_method
    ):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        tables = _corpus()
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_tables(tables, _TYPE_KEYS)

        def backend_run(backend):
            """Seed the backend's shared directory, then a workers=2 run."""
            cache_dir = tmp_path / backend
            cache_dir.mkdir()
            config = AnnotatorConfig(cache_backend=backend, cache_buckets=8)
            EntityAnnotator(
                classifier, _make_engine(), config
            ).annotate_tables(tables, _TYPE_KEYS, cache_dir=cache_dir)
            return annotate_tables_parallel(
                EntityAnnotator(classifier, _make_engine(), config),
                tables,
                _TYPE_KEYS,
                workers=2,
                cache_dir=cache_dir,
                start_method=start_method,
            )

        memory_run = backend_run("memory")
        disk_run = backend_run("disk")
        assert disk_run == memory_run == reference
        assert repr(sorted(disk_run.tables.items())) == repr(
            sorted(reference.tables.items())
        )
        assert _normalised(disk_run.diagnostics) == _normalised(
            memory_run.diagnostics
        )
        assert disk_run.diagnostics.virtual_seconds == pytest.approx(
            memory_run.diagnostics.virtual_seconds
        )
        assert len(disk_run.diagnostics.worker_loads) == 2
        # Every disk worker warm-started from the one shared store, and
        # said so in its measured load.
        assert all(
            load.cache_load_bytes > 0
            for load in disk_run.diagnostics.worker_loads
            if load.n_tasks
        )

    def test_service_path(self, classifier, tmp_path):
        table = _corpus(n_tables=1, rows_per_table=6)[0]
        reference = EntityAnnotator(
            classifier, _make_engine(), AnnotatorConfig()
        ).annotate_table(table, _TYPE_KEYS)
        disk_config = AnnotatorConfig(cache_backend="disk", cache_buckets=8)
        EntityAnnotator(
            classifier, _make_engine(), disk_config
        ).annotate_tables(_corpus(), _TYPE_KEYS, cache_dir=tmp_path)
        service = AnnotationService(
            EntityAnnotator(classifier, _make_engine(), disk_config),
            ServiceConfig(cache_dir=str(tmp_path)),
        ).start()
        try:
            response = service.submit(
                protocol.annotate_table_request(table, _TYPE_KEYS, "1")
            )
            assert response.ok
            assert (
                protocol.annotation_from_payload(response.result["annotation"])
                == reference
            )
            stats = service.submit(protocol.stats_request("2")).result
            assert stats["cache_backend"] == "disk"
            assert stats["cache_load_bytes"] > 0
        finally:
            service.stop()


# -------------------------------------------------------------------- observability


class TestCacheDiagnostics:
    def test_counters_cover_the_run_cold_then_warm(self, classifier, tmp_path):
        tables = _corpus()
        disk_config = AnnotatorConfig(cache_backend="disk", cache_buckets=8)
        cold = EntityAnnotator(
            classifier, _make_engine(), disk_config
        ).annotate_tables(tables, _TYPE_KEYS, cache_dir=tmp_path)
        assert cold.diagnostics.results_cache_misses > 0
        assert cold.diagnostics.label_memo_misses > 0
        assert cold.diagnostics.cache_saves >= 2  # both stores flushed
        assert cold.diagnostics.cache_save_bytes > 0
        assert cold.diagnostics.cache_lock_wait_seconds >= 0.0
        warm = EntityAnnotator(
            classifier, _make_engine(), disk_config
        ).annotate_tables(tables, _TYPE_KEYS, cache_dir=tmp_path)
        assert warm.diagnostics.results_cache_hits > 0
        assert warm.diagnostics.label_memo_hits > 0
        assert warm.diagnostics.cache_loads >= 2  # both stores attached
        assert warm.diagnostics.cache_load_bytes > 0

    def test_memory_backend_counters_too(self, classifier, tmp_path):
        tables = _corpus()
        config = AnnotatorConfig()  # memory is the byte-identical default
        EntityAnnotator(classifier, _make_engine(), config).annotate_tables(
            tables, _TYPE_KEYS, cache_dir=tmp_path
        )
        warm = EntityAnnotator(
            classifier, _make_engine(), config
        ).annotate_tables(tables, _TYPE_KEYS, cache_dir=tmp_path)
        assert warm.diagnostics.results_cache_hits > 0
        assert warm.diagnostics.cache_loads >= 2
        assert warm.diagnostics.cache_load_bytes > 0
