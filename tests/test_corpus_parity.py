"""Parity regression: corpus-at-a-time ``annotate_tables`` versus per table.

The corpus path (``EntityAnnotator.annotate_tables`` default) must be a
pure optimisation over the retained per-table loop
(``_annotate_tables_sequential``): identical :class:`AnnotationRun` output
-- annotations *and* run diagnostics -- and identical virtual-clock
accounting in every scenario where the two protocols issue the same
requests: mixed-shape corpora, corpora with queries repeated across
tables under a shared :class:`SnippetCache`, spatial disambiguation,
engine-down and failure-injection runs.

The *designed* divergences mirror the table-level batching contract of
PR 1.  Without a shared cache, a query string recurring across tables is
issued (and charged) once per corpus here versus once per table there --
that protocol-level amortisation is the point of the corpus path -- while
annotations still agree exactly.  And a *failed* repeated query is final
for the whole corpus run but retried per table by the sequential loop
(failures are never cached), so under random failure injection the two
retry streams may diverge; parity under failures is therefore asserted
for the deterministic cases (engine fully down, injection over distinct
queries), matching the documented contract.
"""

import random

import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotation import SnippetCache
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.eval import experiments
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_MUSEUM_WORDS = "exhibit gallery paintings curator collection museum".split()
_RESTAURANT_WORDS = "menu chef cuisine dining wine tasting".split()
_MUSEUMS = ["Grand Gallery", "Stone Hall", "Blue Door"]
_RESTAURANTS = ["Old Mill", "River House"]
_TYPE_KEYS = ["museum", "restaurant"]


def _make_engine(**kwargs) -> SearchEngine:
    """Deterministic corpus: typed pages for five entities."""
    engine = SearchEngine(clock=VirtualClock(), **kwargs)
    rng = random.Random(0)
    pages = []
    for names, words in ((_MUSEUMS, _MUSEUM_WORDS), (_RESTAURANTS, _RESTAURANT_WORDS)):
        for name in names:
            for i in range(8):
                pages.append(
                    WebPage(
                        url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                        title=name,
                        body=f"{name.lower()} " + " ".join(rng.choices(words, k=30)),
                    )
                )
    engine.add_pages(pages)
    return engine


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    rng = random.Random(1)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_MUSEUM_WORDS, k=12)), "museum")
        dataset.add(" ".join(rng.choices(_RESTAURANT_WORDS, k=12)), "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


def _table(name, values) -> Table:
    table = Table(name=name, columns=[Column("Name", ColumnType.TEXT)])
    for value in values:
        table.append_row([value])
    return table


def _mixed_corpus() -> list[Table]:
    """Mixed shapes: distinct-value, repeated-value, overlapping, unknown."""
    return [
        _table("distinct", _MUSEUMS),
        _table("repeats", [_MUSEUMS[0]] * 3 + _RESTAURANTS),
        _table("overlap", list(reversed(_MUSEUMS)) + [_RESTAURANTS[0]]),
        _table("unknown", ["Nonexistent Place", _MUSEUMS[1]]),
        _table("empty", []),
    ]


def _annotate_both(tables, classifier, engine_factory, config=None, cache_factory=None):
    """Run both corpus paths on separate-but-identical engines."""
    outcomes = []
    for path in ("corpus", "sequential"):
        engine = engine_factory()
        cache = cache_factory() if cache_factory is not None else None
        annotator = EntityAnnotator(
            classifier, engine, config or AnnotatorConfig(), cache=cache
        )
        if path == "corpus":
            run = annotator.annotate_tables(tables, _TYPE_KEYS)
        else:
            run = annotator._annotate_tables_sequential(tables, _TYPE_KEYS)
        outcomes.append(
            {
                "run": run,
                "charges": engine.clock.n_charges,
                "seconds": engine.clock.elapsed_seconds,
                "queries": engine.query_count,
                "failures": annotator.search_failures,
                "cache": cache,
            }
        )
    return outcomes


def _assert_parity(corpus, sequential):
    assert corpus["run"] == sequential["run"]
    assert corpus["run"].diagnostics == sequential["run"].diagnostics
    assert corpus["charges"] == sequential["charges"]
    assert corpus["seconds"] == sequential["seconds"]
    assert corpus["queries"] == sequential["queries"]
    assert corpus["failures"] == sequential["failures"]


class TestMixedShapeParity:
    def test_shared_cache_full_parity(self, classifier):
        # With a shared SnippetCache both protocols collapse cross-table
        # repeats identically: annotations, diagnostics, clock and cache
        # counters all agree.
        corpus, sequential = _annotate_both(
            _mixed_corpus(), classifier, _make_engine, cache_factory=SnippetCache
        )
        _assert_parity(corpus, sequential)
        assert len(corpus["run"]) > 0
        assert corpus["cache"].hits == sequential["cache"].hits
        assert corpus["cache"].misses == sequential["cache"].misses
        # 6 distinct query strings across the corpus, each issued once.
        assert corpus["queries"] == 6

    def test_no_cross_table_repeats_full_parity_without_cache(self, classifier):
        tables = [
            _table("museums", _MUSEUMS),
            _table("restaurants", _RESTAURANTS),
        ]
        corpus, sequential = _annotate_both(tables, classifier, _make_engine)
        _assert_parity(corpus, sequential)

    def test_cross_table_repeats_dedupe_by_design(self, classifier):
        # Without a cache the protocols intentionally diverge in issued
        # requests: the corpus path resolves each distinct string once for
        # the whole run, the per-table loop once per table.  Annotations
        # and per-table results still match exactly.
        tables = [_table(f"site-{i}", _MUSEUMS) for i in range(4)]
        corpus, sequential = _annotate_both(tables, classifier, _make_engine)
        assert corpus["run"] == sequential["run"]
        assert corpus["queries"] == len(_MUSEUMS)
        assert sequential["queries"] == len(_MUSEUMS) * 4

    def test_empty_corpus(self, classifier):
        corpus, sequential = _annotate_both([], classifier, _make_engine)
        _assert_parity(corpus, sequential)
        assert corpus["run"].diagnostics.n_tables == 0
        assert corpus["run"].diagnostics.n_cells == 0


class TestFailureParity:
    def test_engine_down_distinct_values(self, classifier):
        def down_engine():
            engine = _make_engine()
            engine.available = False
            return engine

        tables = [_table("a", _MUSEUMS), _table("b", _RESTAURANTS)]
        corpus, sequential = _annotate_both(tables, classifier, down_engine)
        _assert_parity(corpus, sequential)
        assert corpus["failures"] == len(_MUSEUMS) + len(_RESTAURANTS)
        assert len(corpus["run"]) == 0
        diag = corpus["run"].diagnostics
        assert diag.search_failures == corpus["failures"]

    def test_failure_injection_same_rng_stream(self, classifier):
        # Distinct values across the corpus: both protocols issue the same
        # query sequence in the same order, so the failure injector drops
        # the same requests and every counter agrees.
        tables = [_table("a", _MUSEUMS), _table("b", _RESTAURANTS)]
        corpus, sequential = _annotate_both(
            tables, classifier, lambda: _make_engine(failure_rate=0.4, seed=7)
        )
        _assert_parity(corpus, sequential)

    def test_engine_down_with_cross_table_repeats(self, classifier):
        # The designed divergence under failures: the corpus path fails a
        # repeated query once for the whole run, the per-table loop retries
        # it per table.  Decisions and failure counts still agree.
        tables = [_table(f"site-{i}", _MUSEUMS) for i in range(3)]

        def down_engine():
            engine = _make_engine()
            engine.available = False
            return engine

        corpus, sequential = _annotate_both(
            tables, classifier, down_engine, cache_factory=SnippetCache
        )
        assert corpus["run"] == sequential["run"]
        assert corpus["failures"] == sequential["failures"] == len(_MUSEUMS) * 3
        assert corpus["cache"].misses == sequential["cache"].misses
        assert corpus["charges"] == len(_MUSEUMS)
        assert sequential["charges"] == len(_MUSEUMS) * 3

    def test_failed_corpus_queries_retried_next_run(self, classifier):
        engine = _make_engine()
        engine.available = False
        annotator = EntityAnnotator(classifier, engine, AnnotatorConfig())
        tables = [_table("a", [_MUSEUMS[0]]), _table("b", [_MUSEUMS[0]])]
        run = annotator.annotate_tables(tables, _TYPE_KEYS)
        assert len(run) == 0
        engine.available = True
        run = annotator.annotate_tables(tables, _TYPE_KEYS)
        assert len(run) == 2  # retried and succeeded in both tables


class TestSpatialParity:
    def test_disambiguation_contexts(self, small_context):
        tables = [
            experiments._efficiency_table(small_context, 15),
            experiments._efficiency_table(small_context, 10, start=40),
        ]
        config = AnnotatorConfig(use_spatial_disambiguation=True)
        world = small_context.world
        results = []
        for path in ("corpus", "sequential"):
            annotator = EntityAnnotator(
                small_context.classifiers["svm"],
                world.search_engine,
                config,
                geocoder=world.geocoder,
            )
            before = (world.clock.n_charges, world.clock.elapsed_seconds)
            if path == "corpus":
                run = annotator.annotate_tables(tables, experiments.ALL_TYPE_KEYS)
            else:
                run = annotator._annotate_tables_sequential(
                    tables, experiments.ALL_TYPE_KEYS
                )
            results.append(
                (
                    run,
                    world.clock.n_charges - before[0],
                    world.clock.elapsed_seconds - before[1],
                )
            )
        assert results[0] == results[1]


class TestDiagnostics:
    def test_diagnostics_aggregate_across_tables(self, classifier):
        # The run-level counters span every table of the run -- the
        # last-table-only view this replaces would report 1 query here.
        engine = _make_engine()
        cache = SnippetCache()
        annotator = EntityAnnotator(
            classifier, engine, AnnotatorConfig(), cache=cache
        )
        tables = [
            _table("a", _MUSEUMS),
            _table("b", _RESTAURANTS),
            _table("c", [_MUSEUMS[0]]),
        ]
        run = annotator.annotate_tables(tables, _TYPE_KEYS)
        diag = run.diagnostics
        assert diag.n_tables == 3
        assert diag.n_cells == 6
        assert diag.queries_issued == 5  # five distinct strings, issued once
        assert diag.search_failures == 0
        assert diag.cache_misses == 5
        assert diag.cache_hits == 1  # table c's repeat of a museum query
        assert diag.cache_hit_rate == pytest.approx(1 / 6)
        assert diag.virtual_seconds == pytest.approx(engine.latency_seconds * 5)
        assert diag.clock_charges == 5

    def test_diagnostics_are_per_run_not_lifetime(self, classifier):
        engine = _make_engine()
        annotator = EntityAnnotator(classifier, engine, AnnotatorConfig())
        tables = [_table("a", _MUSEUMS)]
        first = annotator.annotate_tables(tables, _TYPE_KEYS)
        second = annotator.annotate_tables(tables, _TYPE_KEYS)
        assert first.diagnostics.queries_issued == len(_MUSEUMS)
        assert second.diagnostics.queries_issued == len(_MUSEUMS)
        assert second.diagnostics.n_tables == 1
        # while the annotator-level failure counter stays lifetime
        assert annotator.search_failures == 0

    def test_diagnostics_excluded_from_run_equality(self, classifier):
        corpus, sequential = _annotate_both(
            [_table(f"site-{i}", _MUSEUMS) for i in range(2)],
            classifier,
            _make_engine,
        )
        # queries_issued legitimately differs without a cache ...
        assert (
            corpus["run"].diagnostics.queries_issued
            != sequential["run"].diagnostics.queries_issued
        )
        # ... yet the runs still compare equal on their annotations.
        assert corpus["run"] == sequential["run"]


class TestExperimentHarnessParity:
    def test_memoised_runs_unchanged_by_corpus_path(self, small_context):
        # The experiment harness annotates corpora through a shared
        # SnippetCache; the corpus path must reproduce the sequential
        # harness run exactly (Table 1/3 inputs stay byte-identical).
        run = small_context.annotation_run(backend="svm", postprocess=False)
        config = AnnotatorConfig(
            use_postprocessing=False, use_spatial_disambiguation=False
        )
        annotator = EntityAnnotator(
            small_context.classifiers["svm"],
            small_context.world.search_engine,
            config,
            cache=small_context.cache,
        )
        replay = annotator._annotate_tables_sequential(
            small_context.gft.tables, experiments.ALL_TYPE_KEYS
        )
        assert replay == run
