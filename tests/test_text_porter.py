"""Tests for the Porter stemmer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.porter import PorterStemmer, stem

# Classic examples from Porter's 1980 paper, step by step.
PORTER_PAPER_CASES = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", PORTER_PAPER_CASES)
def test_porter_paper_cases(word, expected):
    assert stem(word) == expected


class TestDomainWords:
    def test_museum_family_collapses(self):
        assert stem("museums") == stem("museum")

    def test_university_family_collapses(self):
        assert stem("universities") == stem("university")

    def test_annotation_family_collapses(self):
        assert stem("annotations") == stem("annotated") == stem("annotation")

    def test_dining_keeps_stem(self):
        assert stem("dining") == "dine"


class TestEdgeCases:
    def test_short_words_unchanged(self):
        for word in ("a", "is", "on", "by"):
            assert stem(word) == word

    def test_three_letter_word(self):
        assert stem("sky") == "sky"

    def test_instance_and_module_function_agree(self):
        stemmer = PorterStemmer()
        for word in ("caresses", "running", "happiness"):
            assert stemmer.stem(word) == stem(word)


@given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
               min_size=1, max_size=20))
def test_stem_never_longer_than_word(word):
    assert len(stem(word)) <= len(word)


@given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
               min_size=1, max_size=20))
def test_stem_deterministic(word):
    assert stem(word) == stem(word)
