"""Tests for table rendering."""

import pytest

from repro.core.results import CellAnnotation, TableAnnotation
from repro.tables.model import Column, ColumnType, Table
from repro.tables.render import annotation_marker, render_markdown, render_text


@pytest.fixture()
def table():
    return Table(
        name="demo",
        columns=[Column("Name", ColumnType.TEXT), Column("City", ColumnType.LOCATION)],
        rows=[["Louvre", "Paris"], ["Melisse", "Santa Monica"]],
    )


class TestRenderText:
    def test_header_carries_gft_types(self, table):
        text = render_text(table)
        assert "Name [Text]" in text
        assert "City [Location]" in text

    def test_all_values_present(self, table):
        text = render_text(table)
        for row in table.rows:
            for value in row:
                assert value in text

    def test_title_line(self, table):
        assert render_text(table).splitlines()[0] == "demo (2 x 2)"

    def test_long_values_clipped(self):
        t = Table(name="t", columns=[Column("A")], rows=[["x" * 100]])
        text = render_text(t, max_value_width=10)
        assert "x" * 11 not in text
        assert "..." in text

    def test_invalid_width(self, table):
        with pytest.raises(ValueError):
            render_text(table, max_value_width=2)


class TestRenderMarkdown:
    def test_structure(self, table):
        lines = render_markdown(table).splitlines()
        assert lines[0] == "| Name | City |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| Louvre | Paris |"

    def test_pipes_escaped(self):
        t = Table(name="t", columns=[Column("A")], rows=[["a|b"]])
        assert "a\\|b" in render_markdown(t)


class TestAnnotationMarker:
    def test_annotated_cells_marked(self, table):
        annotation = TableAnnotation(table_name="demo")
        annotation.add(CellAnnotation("demo", 0, 0, "museum", 0.9))
        marker = annotation_marker(annotation)
        text = render_text(table, marker=marker)
        assert "<-museum:0.9" in text
        assert text.count("<-") == 1

    def test_marker_in_markdown(self, table):
        annotation = TableAnnotation(table_name="demo")
        annotation.add(CellAnnotation("demo", 1, 0, "restaurant", 1.0))
        text = render_markdown(table, marker=annotation_marker(annotation))
        assert "Melisse  <-restaurant:1.0" in text
