"""Tests for Vocabulary and SnippetVectorizer."""

import numpy as np
import pytest
from scipy import sparse

from repro.text.vectorizer import SnippetVectorizer
from repro.text.vocabulary import Vocabulary


class TestVocabulary:
    def test_fit_assigns_sorted_contiguous_indices(self):
        vocab = Vocabulary().fit([["b", "a"], ["c", "a"]])
        assert [vocab.index_of(t) for t in ("a", "b", "c")] == [0, 1, 2]

    def test_min_count_filters_rare_tokens(self):
        vocab = Vocabulary(min_count=2).fit([["a", "b"], ["a"]])
        assert "a" in vocab
        assert "b" not in vocab

    def test_unknown_token_maps_to_none(self):
        vocab = Vocabulary().fit([["a"]])
        assert vocab.index_of("zzz") is None

    def test_token_at_inverse(self):
        vocab = Vocabulary().fit([["x", "y"]])
        for token in vocab:
            assert vocab.token_at(vocab.index_of(token)) == token

    def test_double_fit_rejected(self):
        vocab = Vocabulary().fit([["a"]])
        with pytest.raises(RuntimeError):
            vocab.fit([["b"]])

    def test_invalid_min_count_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)

    def test_len_and_iteration(self):
        vocab = Vocabulary.from_tokens(["a", "b", "a"])
        assert len(vocab) == 2
        assert list(vocab) == ["a", "b"]


class TestSnippetVectorizer:
    def test_fit_transform_shape(self):
        vectorizer = SnippetVectorizer(min_count=1)
        X = vectorizer.fit_transform(["menu chef", "museum gallery chef"])
        assert X.shape == (2, len(vectorizer.vocabulary))
        assert sparse.issparse(X)

    def test_rows_are_normalised_frequencies(self):
        vectorizer = SnippetVectorizer(min_count=1)
        X = vectorizer.fit_transform(["menu menu wine"])
        row = np.asarray(X.todense()).ravel()
        assert np.isclose(row.sum(), 1.0)

    def test_out_of_vocabulary_tokens_dropped(self):
        vectorizer = SnippetVectorizer(min_count=1)
        vectorizer.fit(["menu chef"])
        X = vectorizer.transform(["menu saxophone"])
        # only 'menu' lands in the vocabulary
        assert X.nnz == 1

    def test_empty_snippet_gives_zero_row(self):
        vectorizer = SnippetVectorizer(min_count=1)
        vectorizer.fit(["menu"])
        X = vectorizer.transform([""])
        assert X.nnz == 0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SnippetVectorizer().transform(["menu"])

    def test_transform_one_is_single_row(self):
        vectorizer = SnippetVectorizer(min_count=1)
        vectorizer.fit(["menu chef wine"])
        X = vectorizer.transform_one("menu wine")
        assert X.shape[0] == 1

    def test_stemming_merges_inflections(self):
        vectorizer = SnippetVectorizer(min_count=1)
        X = vectorizer.fit_transform(["museum museums"])
        # both tokens stem to the same feature
        assert len(vectorizer.vocabulary) == 1
        assert np.isclose(X[0, 0], 1.0)

    def test_min_count_two_requires_repetition(self):
        vectorizer = SnippetVectorizer(min_count=2)
        vectorizer.fit(["menu chef", "menu wine"])
        assert vectorizer.vocabulary.index_of("menu") is not None
        assert vectorizer.vocabulary.index_of("chef") is None
