"""Tests for the resident annotation service (repro.service).

The contracts under test, mirroring ``tests/test_corpus_parity.py`` one
layer up:

* **wire schema** -- requests/responses and table/annotation payloads
  round-trip exactly; foreign versions and malformed messages are
  rejected with :class:`ProtocolError`, not guessed at;
* **demux** -- ``EntityAnnotator.annotate_batch`` answers positionally
  and never merges same-named tables (two independent requests may ship
  the same table name);
* **service parity** -- concurrent clients submitting overlapping-query
  tables receive annotations byte-identical to sequential one-shot
  ``annotate_table`` calls on an identical engine;
* **coalescing** -- concurrently-arriving requests share pooled corpus
  passes (coalescing ratio > 1), while requests with different
  ``type_keys`` never share a pass (the Equation 1 vote depends on the
  requested types);
* **cache-dir sharing** -- a daemon flushing into a cache directory
  locked by another process (a concurrent CLI run) skips the save after
  the bounded lock wait instead of hanging, and keeps serving.
"""

import json
import os
import random
import threading
import time

import pytest

from repro import persistence
from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotation import SnippetCache
from repro.core.annotator import EntityAnnotator
from repro.core.config import AnnotatorConfig
from repro.service import daemon as daemon_module
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    HAVE_UNIX_SOCKETS,
    AnnotationDaemon,
    AnnotationService,
    ServiceConfig,
)
from repro.service.protocol import ProtocolError, Request
from repro.tables.model import Column, ColumnType, Table
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_MUSEUM_WORDS = "exhibit gallery paintings curator collection museum".split()
_RESTAURANT_WORDS = "menu chef cuisine dining wine tasting".split()
_MUSEUMS = ["Grand Gallery", "Stone Hall", "Blue Door"]
_RESTAURANTS = ["Old Mill", "River House"]
_TYPE_KEYS = ["museum", "restaurant"]

needs_unix_sockets = pytest.mark.skipif(
    not HAVE_UNIX_SOCKETS, reason="requires Unix-domain sockets"
)


def _make_engine(**kwargs) -> SearchEngine:
    engine = SearchEngine(clock=VirtualClock(), **kwargs)
    rng = random.Random(0)
    pages = []
    for names, words in ((_MUSEUMS, _MUSEUM_WORDS), (_RESTAURANTS, _RESTAURANT_WORDS)):
        for name in names:
            for i in range(8):
                pages.append(
                    WebPage(
                        url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                        title=name,
                        body=f"{name.lower()} " + " ".join(rng.choices(words, k=30)),
                    )
                )
    engine.add_pages(pages)
    return engine


@pytest.fixture(scope="module")
def classifier() -> SnippetTypeClassifier:
    rng = random.Random(1)
    dataset = TextDataset()
    for _ in range(60):
        dataset.add(" ".join(rng.choices(_MUSEUM_WORDS, k=12)), "museum")
        dataset.add(" ".join(rng.choices(_RESTAURANT_WORDS, k=12)), "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)


def _table(name, values) -> Table:
    table = Table(name=name, columns=[Column("Name", ColumnType.TEXT)])
    for value in values:
        table.append_row([value])
    return table


def _annotator(classifier, **kwargs) -> EntityAnnotator:
    return EntityAnnotator(classifier, _make_engine(), AnnotatorConfig(), **kwargs)


# ---------------------------------------------------------------------------- protocol


class TestProtocol:
    def test_request_round_trip(self):
        request = protocol.annotate_table_request(
            _table("t", _MUSEUMS), _TYPE_KEYS, request_id="42"
        )
        assert protocol.decode_request(protocol.encode_request(request)) == request

    def test_response_round_trip(self):
        response = protocol.Response(
            ok=True, request_id="7", result={"annotation": {"table": "t", "cells": []}}
        )
        assert (
            protocol.decode_response(protocol.encode_response(response)) == response
        )

    def test_foreign_version_rejected(self):
        line = json.dumps({"v": 99, "op": "ping", "id": "1"})
        with pytest.raises(ProtocolError, match="version"):
            protocol.decode_request(line)
        with pytest.raises(ProtocolError, match="version"):
            protocol.decode_response(json.dumps({"v": 99, "ok": True}))

    def test_unknown_op_rejected(self):
        line = json.dumps({"v": 1, "op": "frobnicate", "id": "1"})
        with pytest.raises(ProtocolError, match="unknown operation"):
            protocol.decode_request(line)

    def test_malformed_lines_rejected(self):
        for line in ("not json", "[1, 2]", '"string"'):
            with pytest.raises(ProtocolError):
                protocol.decode_request(line)

    def test_table_round_trip_through_request(self):
        table = _table("directory", _MUSEUMS + _RESTAURANTS)
        request = protocol.decode_request(
            protocol.encode_request(
                protocol.annotate_table_request(table, _TYPE_KEYS)
            )
        )
        assert protocol.table_for_request(request) == table

    def test_cells_request_wraps_into_one_column_table(self):
        request = protocol.annotate_cells_request(
            ["Louvre", "Old Mill"], ["museum"], name="probe"
        )
        table = protocol.table_for_request(request)
        assert table.name == "probe"
        assert table.n_columns == 1
        assert table.column_type(0) == ColumnType.TEXT
        assert table.rows == [["Louvre"], ["Old Mill"]]

    def test_type_keys_validated(self):
        for payload in ({}, {"type_keys": []}, {"type_keys": "museum"}):
            with pytest.raises(ProtocolError, match="type_keys"):
                protocol.request_type_keys(Request(op="annotate_table", payload=payload))

    def test_annotation_payload_round_trip(self, classifier):
        annotator = _annotator(classifier)
        annotation = annotator.annotate_table(_table("t", _MUSEUMS), _TYPE_KEYS)
        assert len(annotation) > 0
        payload = protocol.annotation_to_payload(annotation)
        json_round_trip = json.loads(json.dumps(payload))
        assert protocol.annotation_from_payload(json_round_trip) == annotation


# ---------------------------------------------------------------------- annotate_batch


class TestAnnotateBatch:
    def test_positional_demux_matches_annotate_table(self, classifier):
        tables = [
            _table("a", _MUSEUMS),
            _table("b", _RESTAURANTS),
            _table("c", ["Nonexistent Place"]),
        ]
        batch = _annotator(classifier).annotate_batch(tables, _TYPE_KEYS)
        reference = _annotator(classifier)
        assert batch.annotations == [
            reference.annotate_table(table, _TYPE_KEYS) for table in tables
        ]
        assert batch.diagnostics.n_tables == 3

    def test_same_named_tables_are_not_merged(self, classifier):
        # Two independent requests may legitimately ship tables with the
        # same name; each must get exactly its own cells back.
        tables = [_table("directory", _MUSEUMS), _table("directory", _RESTAURANTS)]
        batch = _annotator(classifier).annotate_batch(tables, _TYPE_KEYS)
        assert [a.table_name for a in batch.annotations] == ["directory", "directory"]
        assert {c.cell_value for c in batch.annotations[0].cells} <= set(_MUSEUMS)
        assert {c.cell_value for c in batch.annotations[1].cells} <= set(_RESTAURANTS)
        reference = _annotator(classifier)
        assert batch.annotations == [
            reference.annotate_table(table, _TYPE_KEYS) for table in tables
        ]

    def test_batch_pools_queries_once(self, classifier):
        # The pooled economics: one engine request per distinct query
        # across the whole batch, exactly like annotate_tables.
        tables = [_table(f"site-{i}", _MUSEUMS) for i in range(4)]
        annotator = _annotator(classifier)
        batch = annotator.annotate_batch(tables, _TYPE_KEYS)
        assert batch.diagnostics.queries_issued == len(_MUSEUMS)

    def test_empty_batch(self, classifier):
        batch = _annotator(classifier).annotate_batch([], _TYPE_KEYS)
        assert batch.annotations == []
        assert batch.diagnostics.n_tables == 0


# ------------------------------------------------------------------- in-process service


class TestAnnotationService:
    def _service(self, classifier, **config) -> AnnotationService:
        annotator = _annotator(classifier, cache=SnippetCache())
        return AnnotationService(annotator, ServiceConfig(**config)).start()

    def test_ping_and_stats(self, classifier):
        service = self._service(classifier)
        try:
            pong = service.submit(protocol.ping_request("1"))
            assert pong.ok and pong.result["version"] == protocol.PROTOCOL_VERSION
            stats = service.submit(protocol.stats_request("2"))
            assert stats.ok and stats.result["requests"] == 0
        finally:
            service.stop()

    def test_annotation_parity_through_service(self, classifier):
        service = self._service(classifier)
        try:
            table = _table("t", _MUSEUMS + _RESTAURANTS)
            response = service.submit(
                protocol.annotate_table_request(table, _TYPE_KEYS, "1")
            )
            assert response.ok
            reference = _annotator(classifier).annotate_table(table, _TYPE_KEYS)
            assert (
                protocol.annotation_from_payload(response.result["annotation"])
                == reference
            )
        finally:
            service.stop()

    def test_concurrent_requests_coalesce(self, classifier):
        # All clients release together; the admission window must pool
        # them into one corpus pass (requests > batches).
        n_clients = 6
        service = self._service(
            classifier, batch_window_ms=500.0, max_batch_tables=n_clients
        )
        try:
            tables = [_table(f"site-{i}", _MUSEUMS) for i in range(n_clients)]
            responses = [None] * n_clients
            barrier = threading.Barrier(n_clients)

            def submit(index):
                barrier.wait()
                responses[index] = service.submit(
                    protocol.annotate_table_request(
                        tables[index], _TYPE_KEYS, str(index)
                    )
                )

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(response.ok for response in responses)
            assert service.stats.requests == n_clients
            assert service.stats.batches == 1
            assert service.stats.coalescing_ratio == n_clients
            # Overlapping queries across clients: issued once for the tick.
            assert service.stats.queries_issued == len(_MUSEUMS)
            # Every client still got exactly its own table's answer.
            reference = _annotator(classifier)
            for index, response in enumerate(responses):
                assert (
                    protocol.annotation_from_payload(response.result["annotation"])
                    == reference.annotate_table(tables[index], _TYPE_KEYS)
                )
        finally:
            service.stop()

    def test_different_type_keys_never_share_a_pass(self, classifier):
        # Pooling requests with different requested types would change
        # Equation 1 votes; they must run as separate sub-batches.
        service = self._service(classifier, batch_window_ms=500.0, max_batch_tables=2)
        try:
            barrier = threading.Barrier(2)
            responses = [None, None]
            requests = [
                protocol.annotate_table_request(_table("a", _MUSEUMS), ["museum"], "0"),
                protocol.annotate_table_request(
                    _table("b", _MUSEUMS), ["restaurant"], "1"
                ),
            ]

            def submit(index):
                barrier.wait()
                responses[index] = service.submit(requests[index])

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in (0, 1)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(response.ok for response in responses)
            assert service.stats.requests == 2
            assert service.stats.batches == 2  # one pooled pass per key set
            museum_only = protocol.annotation_from_payload(
                responses[0].result["annotation"]
            )
            restaurant_only = protocol.annotation_from_payload(
                responses[1].result["annotation"]
            )
            assert {cell.type_key for cell in museum_only.cells} <= {"museum"}
            assert restaurant_only.cells == []
        finally:
            service.stop()

    def test_bad_request_answered_not_fatal(self, classifier):
        service = self._service(classifier)
        try:
            response = service.submit(
                Request(op="annotate_table", payload={"table": 3}, request_id="1")
            )
            assert not response.ok
            assert "table" in response.error
            assert service.submit(protocol.ping_request("2")).ok
        finally:
            service.stop()

    def test_abandoned_requests_never_pay_a_pass(self, classifier):
        # A submitter that timed out has already been answered; the
        # batcher must drop its entry instead of running a corpus pass
        # (and counting a request) for nobody.
        annotator = _annotator(classifier, cache=SnippetCache())
        service = AnnotationService(annotator, ServiceConfig())
        pending = daemon_module._Pending(
            protocol.annotate_table_request(_table("t", _MUSEUMS), _TYPE_KEYS, "1"),
            _table("t", _MUSEUMS),
            tuple(_TYPE_KEYS),
        )
        pending.abandoned = True
        service._process([pending])
        assert not pending.done.is_set()
        assert service.stats.requests == 0
        assert service.stats.batches == 0
        assert annotator.engine.query_count == 0

    def test_rejects_after_stop(self, classifier):
        service = self._service(classifier)
        service.stop()
        response = service.submit(
            protocol.annotate_table_request(_table("t", _MUSEUMS), _TYPE_KEYS, "1")
        )
        assert not response.ok
        assert "shutting down" in response.error


# ------------------------------------------------------------------------ socket daemon


@needs_unix_sockets
class TestDaemon:
    def test_concurrent_clients_byte_identical_to_one_shot(
        self, classifier, tmp_path
    ):
        # The service parity contract: N concurrent clients with
        # overlapping-query tables get byte-identical annotations to
        # sequential one-shot annotate_table calls on an identical engine.
        n_clients = 4
        tables = [
            _table(f"site-{i}", list(reversed(_MUSEUMS)) + [_RESTAURANTS[i % 2]])
            for i in range(n_clients)
        ]
        socket_path = tmp_path / "svc.sock"
        daemon = AnnotationDaemon(
            _annotator(classifier, cache=SnippetCache()),
            socket_path,
            ServiceConfig(batch_window_ms=300.0, max_batch_tables=n_clients),
        )
        payloads = [None] * n_clients
        with daemon:
            barrier = threading.Barrier(n_clients)

            def run_client(index):
                with ServiceClient(socket_path) as client:
                    barrier.wait()
                    payloads[index] = protocol.annotation_to_payload(
                        client.annotate_table(tables[index], _TYPE_KEYS)
                    )

            threads = [
                threading.Thread(target=run_client, args=(i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ServiceClient(socket_path) as client:
                stats = client.stats()
        reference = _annotator(classifier)
        for index, table in enumerate(tables):
            expected = protocol.annotation_to_payload(
                reference.annotate_table(table, _TYPE_KEYS)
            )
            # Byte-identical on the wire, not merely equal objects.
            assert json.dumps(payloads[index], sort_keys=True) == json.dumps(
                expected, sort_keys=True
            )
        assert stats["requests"] == n_clients
        assert stats["coalescing_ratio"] > 1.0

    def test_annotate_cells_round_trip(self, classifier, tmp_path):
        daemon = AnnotationDaemon(
            _annotator(classifier), tmp_path / "svc.sock", ServiceConfig()
        )
        with daemon:
            with ServiceClient(tmp_path / "svc.sock") as client:
                decisions = client.annotate_cells(
                    [_MUSEUMS[0], "Unheard Of Place"], _TYPE_KEYS
                )
        assert decisions[0] is not None
        assert decisions[0]["type_key"] == "museum"
        assert decisions[0]["value"] == _MUSEUMS[0]
        assert decisions[1] is None

    def test_shutdown_request_flushes_and_stops(self, classifier, tmp_path):
        cache_dir = tmp_path / "cache"
        daemon = AnnotationDaemon(
            _annotator(classifier),
            tmp_path / "svc.sock",
            ServiceConfig(cache_dir=str(cache_dir)),
        )
        with daemon:
            with ServiceClient(tmp_path / "svc.sock") as client:
                client.annotate_table(_table("t", _MUSEUMS), _TYPE_KEYS)
                result = client.shutdown()
        assert result["saved"] == {"search_results": True, "label_memo": True}
        assert (cache_dir / "search_results.cache").exists()
        assert (cache_dir / "label_memo.cache").exists()
        assert not (tmp_path / "svc.sock").exists()

    def test_second_daemon_refuses_a_live_socket(self, classifier, tmp_path):
        # Binding over a *live* daemon's socket would split clients
        # between two processes and let the first daemon's teardown
        # delete the second's socket file; a *stale* file (crashed
        # daemon) is replaced silently.
        socket_path = tmp_path / "svc.sock"
        daemon = AnnotationDaemon(
            _annotator(classifier), socket_path, ServiceConfig()
        )
        with daemon:
            with pytest.raises(RuntimeError, match="already serving"):
                AnnotationDaemon(
                    _annotator(classifier), socket_path, ServiceConfig()
                )
            # The live daemon is unharmed by the refused construction.
            with ServiceClient(socket_path) as client:
                assert client.ping()["version"] == protocol.PROTOCOL_VERSION
        assert not socket_path.exists()
        # A stale socket file left by a crashed daemon is replaced.
        socket_path.touch()
        replacement = AnnotationDaemon(
            _annotator(classifier), socket_path, ServiceConfig()
        )
        with replacement:
            with ServiceClient(socket_path) as client:
                assert client.ping()["version"] == protocol.PROTOCOL_VERSION
        assert not socket_path.exists()

    def test_daemon_error_response_for_unknown_type_keys(self, classifier, tmp_path):
        daemon = AnnotationDaemon(
            _annotator(classifier), tmp_path / "svc.sock", ServiceConfig()
        )
        with daemon:
            with ServiceClient(tmp_path / "svc.sock") as client:
                with pytest.raises(ServiceError):
                    client.annotate_cells(["Louvre"], [])
                assert client.ping()["version"] == protocol.PROTOCOL_VERSION


# ------------------------------------------------------------------- periodic flushing


class TestPeriodicFlusher:
    def test_flushes_periodically_and_once_more_on_stop(self):
        calls = []
        with persistence.PeriodicFlusher(lambda: calls.append(1), 0.03):
            deadline = time.monotonic() + 2.0
            while len(calls) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert len(calls) >= 3  # >= two periodic + the final stop flush

    def test_callback_errors_are_kept_not_fatal(self):
        calls = []

        def failing_flush():
            calls.append(1)
            raise RuntimeError("disk full")

        flusher = persistence.PeriodicFlusher(failing_flush, 0.02).start()
        deadline = time.monotonic() + 2.0
        while len(calls) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        flusher.stop(final_flush=False)
        assert len(calls) >= 2  # the loop survived the first failure
        assert isinstance(flusher.last_error, RuntimeError)
        assert flusher.flush_count == 0

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval_seconds"):
            persistence.PeriodicFlusher(lambda: None, 0)

    def test_daemon_flushes_on_interval_while_serving(self, classifier, tmp_path):
        # Warmth lands on disk while the daemon keeps serving -- no
        # shutdown needed (the crash-durability property).
        cache_dir = tmp_path / "cache"
        service = AnnotationService(
            _annotator(classifier, cache=SnippetCache()),
            ServiceConfig(
                cache_dir=str(cache_dir), flush_interval_seconds=0.05
            ),
        ).start()
        try:
            response = service.submit(
                protocol.annotate_table_request(
                    _table("t", _MUSEUMS), _TYPE_KEYS, "1"
                )
            )
            assert response.ok
            deadline = time.monotonic() + 5.0
            while (
                not (cache_dir / "search_results.cache").exists()
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert (cache_dir / "search_results.cache").exists()
            assert service.submit(protocol.ping_request("2")).ok
        finally:
            service.stop()


# --------------------------------------------------------------------- cache-dir sharing


@needs_unix_sockets
class TestSharedCacheDir:
    @pytest.fixture()
    def fast_lock_timeout(self, monkeypatch):
        # Lock-timeout defaults resolve at call time, so tightening the
        # module constant bounds every save/load wait in this test.
        monkeypatch.setattr(persistence, "DEFAULT_LOCK_TIMEOUT", 0.2)

    def test_flush_skips_when_cli_holds_the_lock(
        self, classifier, tmp_path, fast_lock_timeout
    ):
        fcntl = pytest.importorskip("fcntl")
        cache_dir = tmp_path / "cache"
        daemon = AnnotationDaemon(
            _annotator(classifier, cache=SnippetCache()),
            tmp_path / "svc.sock",
            ServiceConfig(cache_dir=str(cache_dir)),
        )
        with daemon:
            with ServiceClient(tmp_path / "svc.sock") as client:
                client.annotate_table(_table("t", _MUSEUMS), _TYPE_KEYS)
                # A concurrent CLI run holds the advisory locks (mid-merge).
                holders = []
                for name in ("search_results.cache", "label_memo.cache"):
                    lock_file = persistence.lock_path_for(cache_dir / name)
                    lock_file.parent.mkdir(parents=True, exist_ok=True)
                    fd = os.open(lock_file, os.O_RDWR | os.O_CREAT, 0o644)
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    holders.append(fd)
                try:
                    saved = daemon.service.flush()
                    # Bounded wait, then skip -- never a hang, never a crash.
                    assert saved == {"search_results": False, "label_memo": False}
                    assert not (cache_dir / "search_results.cache").exists()
                    # The daemon is still alive and serving.
                    assert client.ping()["version"] == protocol.PROTOCOL_VERSION
                finally:
                    for fd in holders:
                        fcntl.flock(fd, fcntl.LOCK_UN)
                        os.close(fd)
                # Lock released: the next flush persists everything.
                saved = daemon.service.flush()
                assert saved == {"search_results": True, "label_memo": True}
                assert (cache_dir / "search_results.cache").exists()
