"""Deep checks of the table-corpus scenarios and engine query filtering."""

import pytest

from repro.core.preprocessing import Preprocessor, looks_like_phone, looks_like_url
from repro.synth.world import SyntheticWorld, WorldConfig
from repro.tables.model import ColumnType
from repro.text.tokenization import token_count


class TestScenarioColumns:
    def test_mines_table_has_ore_labels(self, gft_corpus):
        table = gft_corpus.table("gft-mine-1")
        ores = set(table.column_values(table.column_index("Ore")))
        assert ores <= {"Coal", "Copper", "Ore", "Minerals"}
        assert table.column_type(table.column_index("Output (kt)")) is (
            ColumnType.NUMBER
        )

    def test_films_table_has_director_names(self, gft_corpus):
        table = gft_corpus.table("gft-film-1")
        directors = table.column_values(table.column_index("Director"))
        assert all(len(name.split()) == 2 for name in directors)

    def test_episodes_table_has_date_column(self, gft_corpus):
        table = gft_corpus.table("gft-simpsons_episode-1")
        date_column = table.column_index("Original air date")
        assert table.column_type(date_column) is ColumnType.DATE
        assert all("," in value for value in table.column_values(date_column))

    def test_directory_phone_and_website_filterable(self, gft_corpus):
        table = gft_corpus.table("gft-restaurant-1")
        phones = table.column_values(table.column_index("Phone"))
        websites = table.column_values(table.column_index("Website"))
        assert all(looks_like_phone(value) for value in phones)
        assert all(looks_like_url(value) for value in websites)

    def test_descriptions_exceed_long_value_limit(self, gft_corpus):
        pre = Preprocessor()
        table = next(
            t for t in gft_corpus.tables
            if t.name.startswith("gft-museum") and "Description" in t.header()
        )
        column = table.column_index("Description")
        for value in table.column_values(column):
            assert pre.exclusion_reason(value) == "long-value"
            assert token_count(value) > pre.config.long_value_token_limit

    def test_address_cells_mix_partial_and_full(self, gft_corpus):
        table = gft_corpus.table("gft-restaurant-1")
        addresses = table.column_values(table.column_index("Address"))
        with_city = sum(1 for a in addresses if "," in a)
        without_city = len(addresses) - with_city
        assert with_city > 0
        assert without_city > 0

    def test_name_column_never_filtered(self, gft_corpus):
        pre = Preprocessor()
        for table in gft_corpus.tables:
            candidates = {(c.row, c.column) for c in pre.candidate_cells(table)}
            gold_cells = {
                (ref.row, ref.column)
                for ref in gft_corpus.gold.of_table(table.name)
            }
            assert gold_cells <= candidates, table.name


class TestSeedVariation:
    def test_different_seed_different_world(self):
        base = SyntheticWorld.build(WorldConfig.small(seed=13))
        other = SyntheticWorld.build(WorldConfig.small(seed=99))
        base_names = [e.name for e in base.table_entities("museum")]
        other_names = [e.name for e in other.table_entities("museum")]
        assert base_names != other_names
        # Same structure, though.
        assert len(base_names) == len(other_names)

    def test_same_seed_same_world_object(self):
        first = SyntheticWorld.build(WorldConfig.small(seed=13))
        second = SyntheticWorld.build(WorldConfig.small(seed=13))
        assert first is second


class TestEngineQueryFiltering:
    def test_ubiquitous_tokens_ignored(self, small_world):
        engine = small_world.search_engine
        # 'official' appears in a large share of pages (generic pool) and
        # must not dominate a name query.
        with_generic = engine.search("official Chez", k=5)
        without = engine.search("Chez", k=5)
        assert [r.url for r in with_generic] == [r.url for r in without]

    def test_all_common_query_still_answers(self, small_world):
        results = small_world.search_engine.search("official website", k=5)
        assert isinstance(results, list)  # no crash; may or may not be empty

    def test_k_larger_than_matches_returns_all(self, small_world):
        entity = small_world.table_entities("mine")[0]
        results = small_world.search_engine.search(entity.table_name, k=100)
        assert 0 < len(results) <= 100
