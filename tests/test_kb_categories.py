"""Tests for the category network (Figure 6)."""

import pytest

from repro.kb.categories import CategoryNetwork


@pytest.fixture()
def figure6():
    """The exact excerpt of Figure 6."""
    net = CategoryNetwork()
    net.add_containment("Museums", "Museums by continent")
    net.add_containment("Museums", "Museums by country")
    net.add_containment("Museums", "Museum people")
    net.add_containment("Museums by continent", "Museums in Europe")
    net.add_containment("Museums in Europe", "Museums in France")
    net.add_containment("Museums by country", "Museums in France")
    net.add_containment("Museums in France", "History museums in France")
    net.add_containment("Museum people", "Curators")
    return net


class TestStructure:
    def test_children(self, figure6):
        assert figure6.children("Museums") == [
            "Museum people", "Museums by continent", "Museums by country",
        ]

    def test_multiple_parents(self, figure6):
        assert figure6.parents("Museums in France") == [
            "Museums by country", "Museums in Europe",
        ]

    def test_roots(self, figure6):
        assert figure6.roots() == ["Museums"]

    def test_contains(self, figure6):
        assert "Curators" in figure6
        assert "Airports" not in figure6

    def test_unknown_category_raises(self, figure6):
        with pytest.raises(KeyError):
            figure6.children("Airports")

    def test_self_containment_rejected(self, figure6):
        with pytest.raises(ValueError):
            figure6.add_containment("Museums", "Museums")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            CategoryNetwork().add_category("")


class TestTraversal:
    def test_descendants_reach_deep_nodes(self, figure6):
        descendants = figure6.descendants("Museums")
        assert "History museums in France" in descendants
        assert "Curators" in descendants
        assert "Museums" not in descendants

    def test_descendants_no_duplicates_on_diamond(self, figure6):
        descendants = figure6.descendants("Museums")
        assert descendants.count("Museums in France") == 1

    def test_max_depth_limits(self, figure6):
        shallow = figure6.descendants("Museums", max_depth=1)
        assert "Museums by continent" in shallow
        assert "Museums in Europe" not in shallow

    def test_subtree_includes_root(self, figure6):
        assert figure6.subtree("Museums")[0] == "Museums"

    def test_cycle_safe(self):
        net = CategoryNetwork()
        net.add_containment("A", "B")
        net.add_containment("B", "C")
        net.add_containment("C", "A")  # cycle
        assert sorted(net.descendants("A")) == ["B", "C"]


class TestTypeNameFilter:
    def test_keeps_matching_drops_noise(self, figure6):
        descendants = figure6.descendants("Museums")
        kept = figure6.filter_by_type_name(descendants, "museum")
        assert "History museums in France" in kept
        assert "Curators" not in kept
        assert "Museum people" in kept  # contains the word "museum"

    def test_plural_type_words_stem_match(self):
        net = CategoryNetwork()
        net.add_containment("Universities", "Universities in Europe")
        net.add_containment("Universities", "Chancellors")
        kept = net.filter_by_type_name(net.subtree("Universities"), "university")
        assert kept == ["Universities", "Universities in Europe"]

    def test_empty_input(self, figure6):
        assert figure6.filter_by_type_name([], "museum") == []
