"""Tests for the triple store."""

import pytest

from repro.kb.triples import Triple, TripleStore


@pytest.fixture()
def store():
    s = TripleStore()
    s.add("louvre", "rdf:type", "museum")
    s.add("louvre", "locatedIn", "paris")
    s.add("orsay", "rdf:type", "museum")
    s.add("melisse", "rdf:type", "restaurant")
    return s


class TestAdd:
    def test_idempotent(self, store):
        before = len(store)
        store.add("louvre", "rdf:type", "museum")
        assert len(store) == before

    def test_contains(self, store):
        assert Triple("louvre", "rdf:type", "museum") in store
        assert Triple("louvre", "rdf:type", "hotel") not in store

    def test_add_all(self):
        s = TripleStore()
        s.add_all([("a", "p", "b"), ("c", "p", "d")])
        assert len(s) == 2


class TestMatch:
    def test_wildcard_subject(self, store):
        matches = store.match(None, "rdf:type", "museum")
        assert [t.subject for t in matches] == ["louvre", "orsay"]

    def test_wildcard_all(self, store):
        assert len(store.match()) == 4

    def test_exact_triple(self, store):
        assert len(store.match("louvre", "rdf:type", "museum")) == 1

    def test_no_match(self, store):
        assert store.match("nothing", None, None) == []

    def test_results_sorted(self, store):
        matches = store.match(None, "rdf:type", None)
        assert matches == sorted(
            matches, key=lambda t: (t.subject, t.predicate, t.object)
        )


class TestConvenience:
    def test_objects(self, store):
        assert store.objects("louvre", "rdf:type") == ["museum"]

    def test_subjects(self, store):
        assert store.subjects("rdf:type", "museum") == ["louvre", "orsay"]

    def test_iteration_sorted(self, store):
        triples = list(store)
        assert triples == sorted(
            triples, key=lambda t: (t.subject, t.predicate, t.object)
        )
