"""Tests for the mini-SQL SELECT executor."""

import pytest

from repro.tables.model import Column, ColumnType, Table
from repro.tables.sql import SqlError, execute_sql, parse_select


@pytest.fixture()
def table():
    return Table(
        name="pois",
        columns=[
            Column("Name", ColumnType.TEXT),
            Column("City", ColumnType.TEXT),
            Column("Rating", ColumnType.NUMBER),
        ],
        rows=[
            ["Melisse", "Santa Monica", "4.5"],
            ["Louvre", "Paris", "4.9"],
            ["Chez Panisse", "Berkeley", "4.4"],
            ["Ledoyen", "Paris", "4.7"],
        ],
    )


class TestParse:
    def test_star_projection(self):
        query = parse_select("SELECT * FROM gft-1")
        assert query.columns == []
        assert query.table_id == "gft-1"

    def test_explicit_columns(self):
        query = parse_select("select Name, City from gft-9")
        assert query.columns == ["Name", "City"]

    def test_where_and_limit(self):
        query = parse_select(
            "SELECT Name FROM t WHERE City = 'Paris' AND Rating > 4.5 LIMIT 3"
        )
        assert len(query.conditions) == 2
        assert query.limit == 3

    def test_quoted_literals(self):
        query = parse_select("SELECT Name FROM t WHERE City = 'Santa Monica'")
        assert query.conditions[0].literal == "Santa Monica"

    def test_contains_operator(self):
        query = parse_select("SELECT Name FROM t WHERE Name CONTAINS 'chez'")
        assert query.conditions[0].operator == "contains"

    def test_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse_select("DROP TABLE everything")

    def test_bad_where_clause_rejected(self):
        with pytest.raises(SqlError):
            parse_select("SELECT a FROM t WHERE City LIKE 'x'")

    def test_trailing_semicolon_ok(self):
        assert parse_select("SELECT * FROM t;").table_id == "t"


class TestExecute:
    def test_equality_filter(self, table):
        rows = execute_sql("SELECT Name FROM t WHERE City = 'Paris'", table)
        assert rows == [["Louvre"], ["Ledoyen"]]

    def test_numeric_comparison(self, table):
        rows = execute_sql("SELECT Name FROM t WHERE Rating >= 4.7", table)
        assert rows == [["Louvre"], ["Ledoyen"]]

    def test_string_comparison_fallback(self, table):
        rows = execute_sql("SELECT Name FROM t WHERE City < 'C'", table)
        assert rows == [["Chez Panisse"]]

    def test_contains_case_insensitive(self, table):
        rows = execute_sql("SELECT Name FROM t WHERE Name contains 'CHEZ'", table)
        assert rows == [["Chez Panisse"]]

    def test_limit_stops_scan(self, table):
        rows = execute_sql("SELECT Name FROM t LIMIT 2", table)
        assert len(rows) == 2

    def test_star_returns_all_columns(self, table):
        rows = execute_sql("SELECT * FROM t LIMIT 1", table)
        assert rows == [["Melisse", "Santa Monica", "4.5"]]

    def test_and_conjunction(self, table):
        rows = execute_sql(
            "SELECT Name FROM t WHERE City = 'Paris' AND Rating < 4.8", table
        )
        assert rows == [["Ledoyen"]]

    def test_not_equal(self, table):
        rows = execute_sql("SELECT Name FROM t WHERE City != 'Paris'", table)
        assert [r[0] for r in rows] == ["Melisse", "Chez Panisse"]

    def test_unknown_column_raises(self, table):
        with pytest.raises(KeyError):
            execute_sql("SELECT Country FROM t", table)
