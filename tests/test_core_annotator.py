"""Tests for the end-to-end EntityAnnotator and result models."""

import pytest

from repro.core import AnnotatorConfig, EntityAnnotator
from repro.core.results import AnnotationRun, CellAnnotation, TableAnnotation
from repro.synth.types import TYPE_SPECS
from repro.tables.model import Column, ColumnType, Table

ALL_KEYS = [spec.key for spec in TYPE_SPECS]


class TestResultModels:
    def test_cell_annotation_score_bounds(self):
        with pytest.raises(ValueError):
            CellAnnotation("t", 0, 0, "museum", 1.5)

    def test_table_annotation_rejects_foreign_cells(self):
        table_annotation = TableAnnotation(table_name="a")
        with pytest.raises(ValueError):
            table_annotation.add(CellAnnotation("b", 0, 0, "museum", 1.0))

    def test_annotated_rows(self):
        ta = TableAnnotation(table_name="t")
        ta.add(CellAnnotation("t", 3, 0, "museum", 0.9))
        ta.add(CellAnnotation("t", 5, 0, "museum", 0.7))
        ta.add(CellAnnotation("t", 5, 1, "hotel", 0.8))
        assert ta.annotated_rows("museum") == {3, 5}
        assert ta.annotated_rows("hotel") == {5}

    def test_annotation_at(self):
        ta = TableAnnotation(table_name="t")
        cell = CellAnnotation("t", 1, 2, "museum", 0.6)
        ta.add(cell)
        assert ta.annotation_at(1, 2) is cell
        assert ta.annotation_at(0, 0) is None

    def test_run_aggregation(self):
        run = AnnotationRun()
        run.add(CellAnnotation("t1", 0, 0, "museum", 0.9))
        run.add(CellAnnotation("t2", 0, 0, "hotel", 0.8))
        assert len(run) == 2
        assert [c.table_name for c in run.all_cells()] == ["t1", "t2"]
        assert len(run.of_type("hotel")) == 1


@pytest.fixture(scope="module")
def annotator(small_world, small_context):
    return EntityAnnotator(
        small_context.classifiers["svm"],
        small_world.search_engine,
        AnnotatorConfig(),
        geocoder=small_world.geocoder,
    )


class TestAnnotateTable:
    def test_finds_museum_rows(self, small_world, annotator):
        entities = small_world.table_entities("museum")[:6]
        table = Table(
            name="museums",
            columns=[Column("Name", ColumnType.TEXT),
                     Column("City", ColumnType.LOCATION)],
            rows=[[e.table_name, e.city.name] for e in entities],
        )
        annotation = annotator.annotate_table(table, ["museum"])
        rows = annotation.annotated_rows("museum")
        assert len(rows) >= len(entities) - 2  # allow ambiguity misses
        assert all(cell.column == 0 for cell in annotation.cells)

    def test_type_restriction_respected(self, small_world, annotator):
        entities = small_world.table_entities("museum")[:4]
        table = Table(
            name="museums2",
            columns=[Column("Name", ColumnType.TEXT)],
            rows=[[e.table_name] for e in entities],
        )
        annotation = annotator.annotate_table(table, ["hotel"])
        assert all(cell.type_key == "hotel" for cell in annotation.cells)
        assert len(annotation.cells) == 0

    def test_empty_types_rejected(self, annotator):
        table = Table(name="x", columns=[Column("A")], rows=[["v"]])
        with pytest.raises(ValueError):
            annotator.annotate_table(table, [])

    def test_annotate_tables_runs_whole_corpus(self, small_world, annotator):
        tables = []
        for key in ("museum", "hotel"):
            entities = small_world.table_entities(key)[:3]
            tables.append(Table(
                name=f"corpus-{key}",
                columns=[Column("Name", ColumnType.TEXT)],
                rows=[[e.table_name] for e in entities],
            ))
        run = annotator.annotate_tables(tables, ALL_KEYS)
        assert set(run.tables) == {"corpus-museum", "corpus-hotel"}

    def test_requires_geocoder_for_disambiguation(self, small_context, small_world):
        with pytest.raises(ValueError):
            EntityAnnotator(
                small_context.classifiers["svm"],
                small_world.search_engine,
                AnnotatorConfig(use_spatial_disambiguation=True),
            )

    def test_failure_counter_survives_outage(self, small_world, small_context):
        engine = small_world.search_engine
        annotator = EntityAnnotator(
            small_context.classifiers["svm"], engine, AnnotatorConfig()
        )
        table = Table(
            name="down", columns=[Column("Name", ColumnType.TEXT)],
            rows=[["Some Entity"], ["Another Entity"]],
        )
        engine.available = False
        try:
            annotation = annotator.annotate_table(table, ["museum"])
        finally:
            engine.available = True
        assert len(annotation.cells) == 0
        assert annotator.search_failures == 2
