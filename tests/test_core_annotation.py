"""Tests for cell annotation (Equation 1) and the snippet cache."""

import pytest

from repro.classify.dataset import TextDataset
from repro.classify.snippet import SnippetTypeClassifier
from repro.clock import VirtualClock
from repro.core.annotation import CellAnnotator, SnippetCache
from repro.core.config import AnnotatorConfig
from repro.web.documents import WebPage
from repro.web.search import SearchEngine

_MUSEUM_WORDS = "exhibit gallery paintings curator collection museum".split()
_RESTAURANT_WORDS = "menu chef cuisine dining wine tasting".split()


def _engine(museum_pages=8, restaurant_pages=0, name="Grand Gallery"):
    engine = SearchEngine(clock=VirtualClock())
    import random
    rng = random.Random(0)
    for i in range(museum_pages):
        engine.add_page(WebPage(
            url=f"https://x/m{i}", title=name,
            body=f"{name.lower()} " + " ".join(rng.choices(_MUSEUM_WORDS, k=20)),
        ))
    for i in range(restaurant_pages):
        engine.add_page(WebPage(
            url=f"https://x/r{i}", title=name,
            body=f"{name.lower()} " + " ".join(rng.choices(_RESTAURANT_WORDS, k=20)),
        ))
    return engine


def _classifier():
    import random
    rng = random.Random(1)
    ds = TextDataset()
    for _ in range(60):
        ds.add(" ".join(rng.choices(_MUSEUM_WORDS, k=12)), "museum")
        ds.add(" ".join(rng.choices(_RESTAURANT_WORDS, k=12)), "restaurant")
    return SnippetTypeClassifier(backend="svm", min_count=1).fit(ds)


class TestMajorityRule:
    def test_unanimous_snippets_annotate(self):
        annotator = CellAnnotator(_classifier(), _engine(museum_pages=10))
        decision = annotator.annotate_value("Grand Gallery", ["museum", "restaurant"])
        assert decision.type_key == "museum"
        assert decision.score == 1.0

    def test_split_snippets_fail_majority(self):
        # 5/5 museum vs restaurant pages: neither exceeds k/2 = 5.
        engine = _engine(museum_pages=5, restaurant_pages=5)
        annotator = CellAnnotator(_classifier(), engine)
        decision = annotator.annotate_value("Grand Gallery", ["museum", "restaurant"])
        assert decision.type_key is None

    def test_score_is_count_over_k(self):
        engine = _engine(museum_pages=7, restaurant_pages=3)
        annotator = CellAnnotator(_classifier(), engine)
        decision = annotator.annotate_value("Grand Gallery", ["museum", "restaurant"])
        assert decision.type_key == "museum"
        assert decision.score == pytest.approx(0.7)

    def test_no_results_means_no_annotation(self):
        annotator = CellAnnotator(_classifier(), _engine(museum_pages=5))
        decision = annotator.annotate_value("unknown thing", ["museum"])
        assert decision.type_key is None
        assert not decision.failed

    def test_requested_types_only(self):
        annotator = CellAnnotator(_classifier(), _engine(museum_pages=10))
        decision = annotator.annotate_value("Grand Gallery", ["restaurant"])
        assert decision.type_key is None
        # ... but the snippet counts still record the museum votes.
        assert decision.snippet_counts.get("museum", 0) > 5

    def test_empty_type_list_rejected(self):
        annotator = CellAnnotator(_classifier(), _engine())
        with pytest.raises(ValueError):
            annotator.annotate_value("x", [])

    def test_spatial_context_appended_to_query(self):
        engine = _engine(museum_pages=8)
        annotator = CellAnnotator(_classifier(), engine)
        decision = annotator.annotate_value(
            "Grand Gallery", ["museum"], spatial_context="Lyon"
        )
        assert decision.query == "Grand Gallery Lyon"

    def test_custom_majority_threshold(self):
        engine = _engine(museum_pages=4, restaurant_pages=6)
        config = AnnotatorConfig(majority_fraction=0.3)
        annotator = CellAnnotator(_classifier(), engine, config)
        decision = annotator.annotate_value("Grand Gallery", ["museum", "restaurant"])
        assert decision.type_key == "restaurant"
        assert decision.score == pytest.approx(0.6)


class TestFailureHandling:
    def test_engine_down_flags_failure(self):
        engine = _engine()
        engine.available = False
        annotator = CellAnnotator(_classifier(), engine)
        decision = annotator.annotate_value("Grand Gallery", ["museum"])
        assert decision.failed
        assert decision.type_key is None
        assert annotator.failure_count == 1


class TestSnippetCache:
    def test_cache_hit_skips_engine(self):
        engine = _engine(museum_pages=8)
        cache = SnippetCache()
        annotator = CellAnnotator(_classifier(), engine, cache=cache)
        annotator.annotate_value("Grand Gallery", ["museum"])
        queries_before = engine.query_count
        annotator.annotate_value("Grand Gallery", ["museum"])
        assert engine.query_count == queries_before
        assert cache.hits == 1
        assert cache.misses == 1

    def test_cache_key_includes_k(self):
        cache = SnippetCache()
        cache.put("q", 10, ["a"])
        assert cache.get("q", 5) is None
        assert cache.get("q", 10) == ["a"]

    def test_cache_shared_between_annotators(self):
        engine = _engine(museum_pages=8)
        cache = SnippetCache()
        first = CellAnnotator(_classifier(), engine, cache=cache)
        second = CellAnnotator(_classifier(), engine, cache=cache)
        first.annotate_value("Grand Gallery", ["museum"])
        count = engine.query_count
        second.annotate_value("Grand Gallery", ["museum"])
        assert engine.query_count == count

    def test_miss_counted_even_when_put_never_follows(self):
        # An engine failure aborts the lookup between get and put; the
        # miss must still be visible in the cache statistics.
        engine = _engine(museum_pages=8)
        engine.available = False
        cache = SnippetCache()
        annotator = CellAnnotator(_classifier(), engine, cache=cache)
        decision = annotator.annotate_value("Grand Gallery", ["museum"])
        assert decision.failed
        assert cache.misses == 1
        assert cache.hits == 0

    def test_put_is_pure_storage(self):
        cache = SnippetCache()
        cache.put("q", 10, ["a"])
        assert cache.misses == 0
        assert cache.hits == 0

    def test_hit_rate(self):
        cache = SnippetCache()
        assert cache.hit_rate == 0.0
        cache.get("q", 10)  # miss
        cache.put("q", 10, ["a"])
        cache.get("q", 10)  # hit
        cache.get("q", 10)  # hit
        assert cache.hit_rate == pytest.approx(2 / 3)


class TestBatchedAnnotateValues:
    def test_matches_per_value_decisions(self):
        engine = _engine(museum_pages=8)
        classifier = _classifier()
        batch_annotator = CellAnnotator(classifier, _engine(museum_pages=8))
        per_cell_annotator = CellAnnotator(classifier, engine)
        pairs = [("Grand Gallery", None), ("Grand Gallery", "Lyon"), ("zzz", None)]
        batched = batch_annotator.annotate_values(pairs, ["museum", "restaurant"])
        singles = [
            per_cell_annotator.annotate_value(value, ["museum", "restaurant"], ctx)
            for value, ctx in pairs
        ]
        assert batched == singles

    def test_empty_batch(self):
        annotator = CellAnnotator(_classifier(), _engine())
        assert annotator.annotate_values([], ["museum"]) == []

    def test_empty_type_list_rejected(self):
        annotator = CellAnnotator(_classifier(), _engine())
        with pytest.raises(ValueError):
            annotator.annotate_values([("x", None)], [])
