"""Benchmark fixtures: the full paper-scale world and experiment context.

Every benchmark regenerates one of the paper's tables or figures at the
paper's scale (40 GFT tables with 1371 gold references, 36 wiki tables,
~30k-page web).  The context is built once per session; the rendered
artefacts are written to ``benchmarks/output/`` so the numbers can be
compared against the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval import experiments
from repro.synth.world import WorldConfig


@pytest.fixture(scope="session")
def full_context():
    """The paper-scale experiment context (built once, ~1 minute)."""
    return experiments.build_context(WorldConfig())


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    path = Path(__file__).parent / "output"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture()
def save_artifact(artifact_dir):
    """Write a rendered experiment to benchmarks/output/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (artifact_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to benchmarks/output/{name}.txt]")

    return _save
