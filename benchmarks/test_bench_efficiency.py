"""Benchmark E1: the Section 6.4 efficiency study.

Paper shape being verified: running time is dominated by remote-service
latency -- about half a virtual second per row with spatial disambiguation
enabled (the paper reports ~0.5 s/row on tables of up to 500 rows, one
search query per candidate cell plus geocoding), scaling linearly in the
number of rows.
"""

import pytest

from repro.eval import experiments

SIZES = (10, 50, 100, 250, 500)


def test_bench_efficiency(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        experiments.run_efficiency,
        args=(full_context,),
        kwargs={"sizes": SIZES},
        rounds=1,
        iterations=1,
    )
    save_artifact("efficiency", result.render())

    # Latency-dominated: every plain row costs one search (0.3 virtual s).
    for n_rows, calls, _seconds, per_row in result.rows:
        assert calls == n_rows
        assert per_row == pytest.approx(0.3, abs=0.05)

    # With disambiguation each row adds geocoding: ~0.5 s/row (the paper's
    # headline number).
    for n_rows, calls, _seconds, per_row in result.with_disambiguation:
        assert calls >= n_rows
        assert 0.4 <= per_row <= 0.6

    # Linear scaling: per-row cost flat across table sizes.
    per_row_values = [row[3] for row in result.rows]
    assert max(per_row_values) - min(per_row_values) < 0.05
