"""Benchmark T2: regenerate Table 2 (corpus sizes + classifier F per type).

Paper shape being verified: the training corpora built by the Section 5.2.1
procedure are large for most types and an order of magnitude smaller for
Mines and Simpson's episodes (DBpedia provides few entities); both
classifiers reach high F on the held-out snippet test sets, with people
types the hardest.
"""

from repro.eval import experiments


def test_bench_table2(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        experiments.run_table2, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("table2", result.render())

    by_type = {row[0]: row for row in result.rows}

    # Small-corpus types, exactly as in the paper's Table 2.
    assert by_type["Simpson's episodes"][1] < by_type["Museums"][1] / 3
    assert by_type["Mines"][1] < by_type["Museums"][1]

    # 75/25 split.
    for _display, n_train, n_test, _bayes, _svm in result.rows:
        assert n_train > n_test
        ratio = n_train / (n_train + n_test)
        assert 0.70 < ratio < 0.80

    # Classifier quality: high everywhere (paper: 0.91-1.0), people lowest.
    for display, _tr, _te, bayes_f, svm_f in result.rows:
        assert svm_f > 0.8, display
        assert bayes_f > 0.8, display
    people_svm = min(by_type[d][4] for d in ("Actors", "Singers", "Scientists"))
    poi_svm = min(by_type[d][4] for d in ("Museums", "Hotels", "Schools"))
    assert people_svm <= poi_svm
