"""Benchmarks E-HYB / E-CLU: the paper's future-work proposals, implemented.

* Hybrid annotation (§6.4): catalogue hits skip the search engine; quality
  must stay at parity with the pure-web pipeline while a fraction of
  queries comparable to the 22 % catalogue coverage disappears.
* Snippet clustering (§5.2): ambiguous names whose top-10 splits between
  senses defeat the plain majority rule; clustering the snippets first
  recovers a strictly larger share of them.
"""

from repro.eval import extensions


def test_bench_hybrid(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        extensions.run_hybrid, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("extension_hybrid", result.render())

    # Quality parity with the pure pipeline.
    assert abs(result.hybrid_micro_f - result.pure_micro_f) < 0.06
    # Real savings, in the ballpark of the catalogue's 22 % coverage.
    assert 0.08 < result.query_savings < 0.40
    assert result.catalogue_hits > 100


def test_bench_clustering(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        extensions.run_clustering, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("extension_clustering", result.render())

    assert result.n_ambiguous >= 30
    # Clustering must recover at least as many ambiguous names as the
    # plain majority, and strictly more overall.
    assert result.clustered_recovered >= result.plain_recovered
    assert result.clustered_recovered > result.plain_recovered
    assert result.clustered_rate > 0.5


def test_bench_giuliano(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        extensions.run_giuliano, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("extension_giuliano", result.render())

    # Section 5.2.1's critique, measured: similarity matches or beats the
    # classifier on recall but pays heavily in precision ("a review of a
    # restaurant is classified as a reference to an entity of type
    # restaurant"), so the classifier wins on F.
    assert result.similarity_recall >= result.classifier_recall - 0.05
    assert result.similarity_precision < result.classifier_precision - 0.1
    assert result.classifier_f > result.similarity_f
