"""Benchmark T3: regenerate Table 3 (pipeline setting contributions).

Paper shape being verified: post-processing (Equation 2) "increases
dramatically the accuracy of the algorithm" -- the biggest jumps are on
Mines and the People types, whose tables carry repeated-label and
weak-evidence columns; spatial disambiguation then adds a smaller further
improvement on the POI types that have spatial data (evaluated, as in the
paper, only for those types).
"""

from repro.eval import experiments
from repro.synth.types import TYPE_SPECS


def test_bench_table3(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        experiments.run_table3, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("table3", result.render())

    by_display = {row[0]: row for row in result.rows}

    # Post-processing helps overall, dramatically on the noisy types.
    gains = {
        display: row[2] - row[1] for display, row in by_display.items()
    }
    assert gains["Mines"] > 0.15        # paper: 0.62 -> 1.0
    assert gains["Singers"] > 0.10      # paper: 0.51 -> 0.72
    assert gains["Scientists"] > 0.10   # paper: 0.68 -> 0.75
    mean_gain = sum(gains.values()) / len(gains)
    assert mean_gain > 0.05

    # Disambiguation: only spatial POI types have a third column.
    for spec in TYPE_SPECS:
        value = by_display[spec.display][3]
        assert (value is not None) == spec.spatial

    # Where present, disambiguation never hurts much and usually helps.
    spatial = [s.display for s in TYPE_SPECS if s.spatial]
    deltas = [by_display[d][3] - by_display[d][2] for d in spatial]
    assert sum(deltas) / len(deltas) > -0.01
    assert max(deltas) > 0.0
