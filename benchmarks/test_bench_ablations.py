"""Benchmarks A1 / A2: ablations of the design choices in DESIGN.md.

A1 removes the 1/o repetition factor from Equation 2 -- the Figure 8
repeated-label columns must then win column competitions and drag F down.
A2 sweeps the top-k snippet count and the majority threshold -- the paper's
(k=10, strict majority) sits at or near the sweet spot.
"""

from repro.eval import ablation


def test_bench_ablation_repetition(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        ablation.run_repetition_ablation,
        args=(full_context,),
        rounds=1,
        iterations=1,
    )
    save_artifact("ablation_repetition", result.render())

    # The factor must help on average ...
    assert result.mean_gain() > 0.0
    # ... and decisively on the types with repeated-label columns.
    for type_key in ("museum", "singer", "mine"):
        assert (
            result.with_factor[type_key] >= result.without_factor[type_key]
        ), type_key
    # Somewhere the no-factor variant visibly collapses.
    worst_drop = max(
        result.with_factor[k] - result.without_factor[k]
        for k in result.with_factor
    )
    assert worst_drop > 0.1


def test_bench_ablation_topk(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        ablation.run_topk_ablation, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("ablation_topk", result.render())

    paper_setting = result.f_of(10, 0.5)
    # The paper's setting is competitive: within epsilon of the sweep best.
    best = max(result.scores.values())
    assert paper_setting >= best - 0.05

    # k=10 dominates k=3 at the strict-majority threshold.
    assert paper_setting >= result.f_of(3, 0.5) - 0.02

    # A permissive threshold must not beat the strict majority on F at k=10
    # by much (precision pays for the recall).
    assert result.f_of(10, 0.3) <= paper_setting + 0.05
