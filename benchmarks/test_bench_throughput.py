"""Benchmark: real wall-clock throughput of the batched annotation engine.

Unlike E1 (``test_bench_efficiency``), which reports *virtual* network
seconds and must keep reproducing the paper's ~0.5 s/row accounting, this
benchmark measures the actual compute cost of the in-process pipeline on
synthetic directory tables of 100-2,000 rows, comparing the batched
table-at-a-time path (the ``annotate_table`` default) against the retained
seed per-cell path.  Both paths must agree on every annotation.

The measured regime is a stream of same-shape tables over one entity
directory: the batched engine pays a cold start on the first table
(reported as ``batch_cold_seconds``) and is then timed at steady state,
which is where a production deployment serving sustained traffic lives.
Results land in ``benchmarks/output/BENCH_throughput.json`` so future
performance work has a trajectory to beat.

The corpus-level scenario (PR 2) annotates a 20-table same-directory corpus
three ways -- cold corpus-at-a-time, then per-table batching and
corpus-at-a-time both warm-started from the cold run's persisted caches --
asserting the corpus path is >= 2x the per-table loop under equal caches
and that the warm start beats the cold one.

The multi-worker scenario (PR 3) annotates a 20-table distinct-content
corpus with ``annotate_tables(workers=2)`` versus ``workers=1``, both runs
warm-starting from -- and merge-saving back into -- one shared cache
directory, with the engine sleeping its per-request latency for real (the
paper's Section 6.4 latency-dominated regime, which is exactly what a
worker pool overlaps).  The parallel run must be byte-identical to the
single-worker run and >= 1.5x faster wall-clock.

The skewed-corpus scenario (PR 4) annotates the size mix real web-table
corpora exhibit -- one 2,000-row giant table followed by 19 small tables
-- at ``workers=2`` under both schedulers.  Static contiguous sharding
hands whichever shard holds the giant table nearly the whole run; the
work-stealing chunk queue must beat it wall-clock, report a lower
per-worker imbalance ratio, and stay byte-identical to ``workers=1``.

The splitting arm (PR 7) runs the same skewed corpus a fourth way:
stealing with ``split_giant_tables`` on, so the giant table is cut into
row-range slice tasks instead of travelling alone.  Table-atomic
stealing is ceilinged by the giant table itself (its holder does 2,000
of the 3,900 latency units, a vs-static ceiling of 2,900/2,000 =
1.45x); splitting spreads the giant across the pool (~1,950 units per
worker, vs-static asymptote 2,900/1,950 = 1.487x), so beating 1.46x
vs static is proof the scheduler escaped the table-atomic ceiling --
while staying byte-identical to ``workers=1``.  Two measurement choices
keep the arms near their latency-unit physics: an untimed seed pass
warms the engine's in-memory compute caches (inherited copy-on-write by
every forked worker; a cache hit still sleeps its per-request latency),
and ``SKEW_SLICE_COST`` makes every task a uniform 50-cell slice so the
pool can actually reach the 1,950-unit ideal -- with cache-file loads
or coarse slices, fixed costs of ~2 s per arm swamp the 0.25 s that
separates the 1.45x ceiling from the 1.487x asymptote.

The resident-service scenario (PR 5) starts a live
:class:`~repro.service.daemon.AnnotationDaemon` on a Unix socket and
drives it with N concurrent clients (one same-directory table each),
versus annotating the same tables with N one-shot cold invocations.  The
daemon's responses must be byte-identical to the in-process baseline, the
micro-batcher must genuinely coalesce (coalescing ratio > 1), and warm
resident serving must beat the one-shot loop wall-clock.

The flaky-engine scenario (PR 6) annotates a distinct-content corpus
under deterministic failure injection at rate 0.2, once with the seed's
no-retry behaviour (which abandons roughly 20% of the candidate cells)
and once with retries=2 plus the end-of-corpus repair pass.  Both runs
fail the same first attempts, so the coverage gap is exactly what the
resilience layer recovered: the retrying run must keep >= 95% of the
candidate cells.

The index-backend scenario (PR 8) annotates a distinct-content corpus at
``workers=2`` under the ``spawn`` start method twice: over the in-memory
index backend (each worker unpickles a private copy of the whole
annotator -- postings, pages and all) and over a frozen mmap artifact
built from the same index (workers receive the artifact *path* and map
the same physical file read-only).  Both pools must be byte-identical to
the single-worker in-memory reference; at full scale the mmap pool's
pickled payload and per-worker incremental attach RSS must each be a
small fraction of the in-memory pool's.

The cache-backend scenario (PR 9) warm-starts a ``workers=2`` spawn pool
twice from state seeded by one cold run: from the pickled-dict cache
files (each worker loads the whole payload into a private heap copy) and
from the sharded on-disk cache stores (each worker attaches and reads
only manifests plus append logs, streaming entries in per probe).  Both
pools must be byte-identical to the seeding run, the disk pool's
per-worker cache payload must be a small fraction of the memory pool's,
and the growth phase's delta compaction must rewrite some -- but not
all -- bucket files.

The observability scenario (PR 10) times a warm batched workload with
tracing disabled and enabled.  Disabled instrumentation must be free:
the measured per-call cost of the no-op span path, multiplied by the
span count of a traced run, must stay <= 2% of the untraced wall time
(the zero-overhead-when-disabled contract); the tracing-on overhead is
measured and reported alongside it in the JSON artifact.

Set ``REPRO_THROUGHPUT_SMOKE=1`` (CI) to run a single small size with no
artifact writing and no speedup assertions (the workers=2 pool, both
schedulers, the splitting arm, the shared cache directory, the live
daemon, the flaky engine, both index backends and both cache backends
are still exercised, and parity/coverage-ordering still asserted).  Set
``REPRO_INDEX_BACKEND=mmap`` to run every *other* scenario over the
frozen mmap backend too -- their parity flags then double as an
end-to-end backend check at every granularity.  ``REPRO_CACHE_BACKEND=disk``
does the same for the cache layer: every cache-directory scenario then
persists through the sharded disk stores.
"""

import json
import os

from repro.eval import experiments

SMOKE = os.environ.get("REPRO_THROUGHPUT_SMOKE") == "1"
SIZES = (100,) if SMOKE else (100, 500, 1000, 2000)
CORPUS_SHAPE = (5, 20) if SMOKE else (20, 200)  # (tables, rows per table)
PARALLEL_SHAPE = (6, 20) if SMOKE else (20, 100)  # (tables, rows per table)
PARALLEL_LATENCY = 0.001 if SMOKE else 0.008  # real seconds per request
WORKERS = 2
SKEW_SHAPE = (40, 5, 8) if SMOKE else (2000, 19, 100)
"""(giant table rows, small table count, small table rows)."""
SKEW_LATENCY = 0.001 if SMOKE else 0.008  # real seconds per request
SKEW_SLICE_COST = 10 if SMOKE else 50
"""Per-slice cell budget for the splitting arm (``--max-slice-cost``).

At full scale 50 divides the giant table's 2,000 rows, the small tables'
100 rows and the per-worker ideal of 1,950 latency units exactly, so the
queue becomes 78 uniform slice tasks and both workers converge on the
1,950-unit ideal; a coarser budget leaves a runt slice plus 400-cell
small chunks whose granularity strands ~100+ units on one worker."""
SERVICE_SHAPE = (4, 10) if SMOKE else (8, 60)  # (clients, rows per table)
FLAKY_SHAPE = (4, 15) if SMOKE else (8, 50)  # (tables, rows per table)
FLAKY_FAILURE_RATE = 0.2
FLAKY_RETRIES = 2
MMAP_SHAPE = (4, 10) if SMOKE else (6, 50)  # (tables, rows per table)
INDEX_BACKEND = os.environ.get("REPRO_INDEX_BACKEND", "memory")
"""Index backend the non-mmap scenarios run over (``REPRO_INDEX_BACKEND``,
CI sets ``mmap``); the index-backend scenario always measures both."""
DISK_CACHE_SHAPE = (4, 10) if SMOKE else (6, 50)  # (tables, rows per table)
CACHE_BACKEND = os.environ.get("REPRO_CACHE_BACKEND", "memory")
"""Cache backend the cache-directory scenarios persist through
(``REPRO_CACHE_BACKEND``, CI sets ``disk``); the cache-backend scenario
always measures both."""
SERVICE_WINDOW_MS = 250.0
"""Micro-batching window: generous enough that concurrently-released
clients always share a tick (the batch closes early once all have
arrived, so the window is not a latency floor)."""

MIN_STEADY_SPEEDUP = 5.0
"""Required steady-state speedup on the 500-row table (the ISSUE target)."""

MIN_CORPUS_SPEEDUP = 2.0
"""Required warm corpus-at-a-time speedup over warm per-table batching."""

MIN_PARALLEL_SPEEDUP = 1.5
"""Required workers=2 wall-clock gain over workers=1 (latency regime)."""

MIN_SKEW_SPEEDUP = 1.2
"""Required work-stealing wall-clock gain over static shards on the
skewed corpus (the theoretical ceiling at this shape is ~1.45x: static
costs giant+9 small = 2,900 latency units on one worker versus ~2,000
for the stealing queue's busiest worker)."""

MIN_SPLIT_SPEEDUP = 1.46
"""Required splitting-arm wall-clock gain over static shards on the
skewed corpus (the ISSUE 7 acceptance bar): above table-atomic
stealing's 1.45x ceiling, below the splitting asymptote of 1.487x --
only reachable by actually cutting the giant table into slices."""

MIN_SERVICE_SPEEDUP = 1.5
"""Required resident-service wall-clock gain over N one-shot cold
invocations (the daemon coalesces N same-directory tables into pooled
passes over one warm engine, so each distinct string is searched and
classified once instead of once per invocation)."""

MIN_FLAKY_COVERAGE = 0.95
"""Required candidate-cell coverage of the retrying annotator at
failure rate 0.2 (the ISSUE 6 acceptance criterion; the no-retry
baseline loses ~20% of the cells on the same failure draws)."""

MAX_MMAP_PAYLOAD_FRACTION = 0.5
"""Required bound on the mmap pool's pickled payload relative to the
in-memory pool's (the ISSUE 8 acceptance criterion: the frozen backend
ships a path, not the postings; in practice the ratio is < 0.01 -- the
bound is generous because the payload also carries the classifier,
which both backends pay alike on a small training set)."""

MAX_MMAP_ATTACH_RSS_FRACTION = 0.5
"""Required bound on per-worker incremental attach RSS, mmap over
in-memory: a spawn worker on the in-memory backend unpickles a private
postings + page store, one on the frozen artifact only maps it."""

MAX_DISK_CACHE_LOAD_FRACTION = 0.5
"""Required bound on the disk pool's per-worker cache payload relative
to the memory pool's (the ISSUE 9 acceptance criterion: attaching a
sharded store reads manifests plus an append log, not the whole pickled
cache files; in practice the ratio is < 0.01 -- the bound is generous
to stay robust to tiny seeded corpora)."""

MAX_TRACING_OFF_OVERHEAD = 0.02
"""Required bound on the disabled instrumentation's cost: per-call no-op
span cost x spans a traced run records, as a fraction of the untraced
wall time (the PR 10 zero-overhead-when-disabled acceptance criterion;
in practice the ratio is < 0.001)."""

OBS_ROUNDS = 3 if SMOKE else 7
OBS_SHAPE = (6, 5)  # (tables, rows per table)


def test_bench_throughput(benchmark, full_context, artifact_dir, save_artifact):
    result = benchmark.pedantic(
        experiments.run_throughput,
        args=(full_context,),
        kwargs={
            "sizes": SIZES,
            "corpus_tables": CORPUS_SHAPE[0],
            "corpus_rows": CORPUS_SHAPE[1],
            "workers": WORKERS,
            "parallel_tables": PARALLEL_SHAPE[0],
            "parallel_rows": PARALLEL_SHAPE[1],
            "parallel_latency_seconds": PARALLEL_LATENCY,
            "skew_giant_rows": SKEW_SHAPE[0],
            "skew_small_tables": SKEW_SHAPE[1],
            "skew_small_rows": SKEW_SHAPE[2],
            "skew_latency_seconds": SKEW_LATENCY,
            "max_slice_cost": SKEW_SLICE_COST,
            "service_clients": SERVICE_SHAPE[0],
            "service_rows": SERVICE_SHAPE[1],
            "service_window_ms": SERVICE_WINDOW_MS,
            "flaky_tables": FLAKY_SHAPE[0],
            "flaky_rows": FLAKY_SHAPE[1],
            "flaky_failure_rate": FLAKY_FAILURE_RATE,
            "retries": FLAKY_RETRIES,
            "index_backend": INDEX_BACKEND,
            "mmap_tables": MMAP_SHAPE[0],
            "mmap_rows": MMAP_SHAPE[1],
            "cache_backend": CACHE_BACKEND,
            "disk_cache_tables": DISK_CACHE_SHAPE[0],
            "disk_cache_rows": DISK_CACHE_SHAPE[1],
        },
        rounds=1,
        iterations=1,
    )

    # Correctness first: the batch path must reproduce the per-cell path's
    # annotations exactly, at every size, in smoke mode too -- the corpus
    # scenario's three runs (cold, warm per-table, warm corpus) must agree
    # on every annotation -- the multi-worker run must agree with the
    # single-worker (and seed) runs over the shared cache directory --
    # and the skewed corpus must come back identical under workers=1,
    # static shards and the work-stealing queue alike.
    assert all(row.identical for row in result.rows)
    assert result.corpus is not None
    assert result.corpus.identical
    assert result.corpus.caches_loaded
    assert result.parallel is not None
    assert result.parallel.identical
    assert result.parallel.workers == WORKERS
    assert result.skewed is not None
    assert result.skewed.identical
    assert result.skewed.workers == WORKERS
    # The chunker split the skewed corpus finer than one task per worker
    # (otherwise there is nothing to steal).
    assert result.skewed.stealing_tasks > WORKERS
    # The splitting arm genuinely cut the giant table into row-range
    # slices -- more tasks than the table-atomic stealing queue -- and
    # (asserted via `identical` above) reassembled them byte-identically
    # to the workers=1 run.
    assert result.skewed.tables_split >= 1
    assert result.skewed.splitting_tasks > result.skewed.stealing_tasks
    assert result.skewed.effective_chunk_cost > 0
    # The live daemon answered every concurrent client with exactly the
    # annotations the in-process one-shot baseline produced.
    assert result.service is not None
    assert result.service.identical
    assert result.service.requests == SERVICE_SHAPE[0]
    # Flaky engine: both runs saw the same first-attempt failure draws,
    # so retries can only help -- and must have actually retried.
    assert result.flaky is not None
    assert result.flaky.resilient_coverage >= result.flaky.baseline_coverage
    assert result.flaky.search_retries > 0
    # Index backends: both spawn pools -- annotator pickled per worker
    # vs frozen mmap artifact shared by path -- must reproduce the
    # single-worker in-memory reference byte for byte, and the frozen
    # artifact must genuinely exist and ship a smaller payload even at
    # smoke scale (a path pickles smaller than a postings store at any
    # corpus size).
    assert result.mmap is not None
    assert result.mmap.identical
    assert result.mmap.workers == WORKERS
    assert result.mmap.artifact_bytes > 0
    assert result.mmap.mmap_payload_bytes < result.mmap.memory_payload_bytes
    # Cache backends: both warm spawn pools -- whole pickled cache files
    # per worker vs sharded stores attached by path -- must reproduce
    # the seeding run byte for byte, the disk pool's per-worker cache
    # payload must be smaller even at smoke scale, and the growth
    # phase's delta compaction must have rewritten some buckets while
    # leaving others untouched (append-and-fold, never rewrite the
    # world).
    assert result.disk_cache is not None
    assert result.disk_cache.identical
    assert result.disk_cache.workers == WORKERS
    assert result.disk_cache.store_bytes > 0
    assert result.disk_cache.disk_load_bytes < result.disk_cache.memory_load_bytes
    assert (
        1
        <= result.disk_cache.delta_buckets_rewritten
        < result.disk_cache.delta_buckets_total
    )

    if SMOKE:
        return

    save_artifact("throughput", result.render())
    payload = result.to_json()
    (artifact_dir / "BENCH_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The headline claim: >= 5x steady-state wall-clock speedup on the
    # 500-row efficiency table versus the seed per-cell loop.
    assert result.speedup_at(500) >= MIN_STEADY_SPEEDUP

    # At every size the batch path must at least not collapse versus the
    # per-cell loop (generous margin: small sizes never reach steady state
    # within the stream, and wall-clock is noisy).
    for row in result.rows:
        assert row.batch_steady_seconds <= 1.5 * row.per_cell_seconds

    # Corpus-at-a-time: >= 2x over per-table batching on the 20-table
    # same-directory corpus (both warm-started from persisted caches, so
    # only the corpus-level structure differs), and the persisted-cache
    # warm start must beat the cold start outright.
    assert result.corpus.corpus_speedup >= MIN_CORPUS_SPEEDUP
    assert result.corpus.corpus_seconds < result.corpus.cold_seconds

    # Multi-worker: >= 1.5x wall-clock over single-worker on the 20-table
    # distinct-content corpus under real per-request latency -- workers
    # overlap the remote waits the paper's cost model is dominated by,
    # so the gain holds on any core count.
    assert result.parallel.speedup >= MIN_PARALLEL_SPEEDUP

    # Skewed corpus: the work-stealing queue must beat static contiguous
    # sharding wall-clock (the ISSUE 4 acceptance criterion) and keep the
    # pool measurably better balanced.
    assert result.skewed.speedup_vs_static >= MIN_SKEW_SPEEDUP
    assert result.skewed.stealing_seconds < result.skewed.static_seconds
    assert result.skewed.stealing_imbalance <= result.skewed.static_imbalance

    # Row-range splitting: past the table-atomic ceiling (the ISSUE 7
    # acceptance criterion) -- the splitting arm must beat static shards
    # by more than atomic stealing ever could at this shape, beat the
    # atomic stealing arm outright, and keep the pool at least as
    # balanced as it.
    assert result.skewed.splitting_speedup_vs_static >= MIN_SPLIT_SPEEDUP
    assert result.skewed.splitting_seconds < result.skewed.stealing_seconds
    assert (
        result.skewed.splitting_imbalance
        <= result.skewed.stealing_imbalance * 1.05
    )

    # Resident service: warm micro-batched serving must beat N one-shot
    # cold invocations (the ISSUE 5 acceptance criterion), and the
    # admission layer must have genuinely coalesced concurrent requests
    # into shared corpus passes.
    assert result.service.speedup >= MIN_SERVICE_SPEEDUP
    assert result.service.coalescing_ratio > 1.0

    # Flaky engine: at failure rate 0.2 the retrying annotator recovers
    # near-full coverage (the ISSUE 6 acceptance criterion) while the
    # no-retry baseline demonstrably lost cells on the same draws.
    assert result.flaky.resilient_coverage >= MIN_FLAKY_COVERAGE
    assert result.flaky.baseline_coverage < result.flaky.resilient_coverage
    assert result.flaky.baseline_degraded > 0

    # Index backends: at full scale the frozen artifact's shipping bill
    # must be a small fraction of the in-memory pool's on both axes that
    # matter for N-worker deployments (the ISSUE 8 acceptance criterion)
    # -- bytes pickled to each spawn worker, and RSS each worker grows
    # while becoming ready.
    assert result.mmap.payload_fraction <= MAX_MMAP_PAYLOAD_FRACTION
    assert result.mmap.attach_rss_fraction <= MAX_MMAP_ATTACH_RSS_FRACTION

    # Cache backends: at full scale each spawn worker's warm start must
    # read a small fraction of the pickled-dict payload from the shared
    # stores (the ISSUE 9 acceptance criterion).
    assert result.disk_cache.load_fraction <= MAX_DISK_CACHE_LOAD_FRACTION


def test_bench_observability(artifact_dir):
    """Disabled tracing must be free; enabled tracing's cost is reported.

    Self-contained workload (no paper-scale context needed): a warm
    batched annotator over a small synthetic directory, timed at steady
    state with tracing off and on.  The off/on runs must also agree on
    every annotation -- spans only observe.
    """
    import random
    import time

    from repro.classify.dataset import TextDataset
    from repro.classify.snippet import SnippetTypeClassifier
    from repro.clock import VirtualClock
    from repro.core.annotation import SnippetCache
    from repro.core.annotator import EntityAnnotator
    from repro.core.config import AnnotatorConfig
    from repro.observability import metrics as obs_metrics
    from repro.observability import tracing
    from repro.observability.tracing import span
    from repro.tables.model import Column, ColumnType, Table
    from repro.web.documents import WebPage
    from repro.web.search import SearchEngine

    words = "exhibit gallery paintings curator collection museum".split()
    names = [f"Venue {i}" for i in range(24)]
    rng = random.Random(0)
    engine = SearchEngine(clock=VirtualClock())
    engine.add_pages(
        [
            WebPage(
                url=f"https://x/{name.replace(' ', '-').lower()}-{i}",
                title=name,
                body=f"{name.lower()} " + " ".join(rng.choices(words, k=30)),
            )
            for name in names
            for i in range(4)
        ]
    )
    dataset = TextDataset()
    train_rng = random.Random(1)
    for _ in range(60):
        dataset.add(" ".join(train_rng.choices(words, k=12)), "museum")
        dataset.add("menu chef cuisine dining wine", "restaurant")
    classifier = SnippetTypeClassifier(backend="svm", min_count=1).fit(dataset)
    annotator = EntityAnnotator(
        classifier, engine, AnnotatorConfig(), cache=SnippetCache()
    )
    n_tables, n_rows = OBS_SHAPE
    tables = []
    for index in range(n_tables):
        table = Table(
            name=f"t{index}", columns=[Column("Name", ColumnType.TEXT)]
        )
        for row in range(n_rows):
            table.append_row([names[(index * n_rows + row) % len(names)]])
        tables.append(table)
    type_keys = ["museum", "restaurant"]

    tracing.reset_tracing()
    obs_metrics.reset_registry()
    try:
        reference = annotator.annotate_batch(tables, type_keys)  # warm-up

        def timed_rounds():
            best = float("inf")
            result = None
            for _ in range(OBS_ROUNDS):
                t0 = time.perf_counter()
                result = annotator.annotate_batch(tables, type_keys)
                best = min(best, time.perf_counter() - t0)
            return best, result

        off_seconds, off_result = timed_rounds()
        assert off_result.annotations == reference.annotations

        tracing.enable_tracing()
        tracing.get_buffer().clear()
        annotator.annotate_batch(tables, type_keys)
        spans_per_run = len(tracing.get_buffer().drain())
        assert spans_per_run > 0
        on_seconds, on_result = timed_rounds()
        assert on_result.annotations == reference.annotations

        # The disabled path: one boolean check + a shared no-op object.
        tracing.disable_tracing()
        iterations = 200_000
        t0 = time.perf_counter()
        for _ in range(iterations):
            with span("bench.noop", tag=1):
                pass
        noop_seconds = (time.perf_counter() - t0) / iterations
    finally:
        tracing.reset_tracing()
        obs_metrics.reset_registry()

    overhead_off = spans_per_run * noop_seconds / off_seconds
    overhead_on = on_seconds / off_seconds - 1.0
    assert overhead_off <= MAX_TRACING_OFF_OVERHEAD, (
        f"disabled spans cost {overhead_off:.4%} of the untraced run "
        f"({spans_per_run} spans x {noop_seconds * 1e9:.0f} ns)"
    )

    if SMOKE:
        return
    artifact = artifact_dir / "BENCH_throughput.json"
    payload = json.loads(artifact.read_text()) if artifact.exists() else {}
    payload["observability"] = {
        "spans_per_run": spans_per_run,
        "noop_span_seconds": noop_seconds,
        "untraced_seconds": off_seconds,
        "traced_seconds": on_seconds,
        "tracing_off_overhead": overhead_off,
        "tracing_on_overhead": overhead_on,
    }
    artifact.write_text(json.dumps(payload, indent=2) + "\n")
