"""Benchmark T1: regenerate Table 1 (P/R/F of SVM, Bayes, TIN, TIS).

Paper shape being verified:

* SVM is balanced (its F beats every baseline's F on the POI average);
* Bayes trades precision for recall (recall >= SVM's, precision below);
* TIN and TIS are conservative -- decent precision, low recall on POIs --
  and score exactly zero on People and Cinema types, whose names and
  snippets never contain the type word.
"""

from repro.eval import experiments
from repro.synth.types import TYPE_SPECS

POI = [s.key for s in TYPE_SPECS if s.category == "poi"]
PEOPLE_AND_CINEMA = [s.key for s in TYPE_SPECS if s.category != "poi"]


def test_bench_table1(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        experiments.run_table1, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("table1", result.render())

    svm = result.evaluations["SVM"]
    bayes = result.evaluations["BAYES"]
    tin = result.evaluations["TIN"]
    tis = result.evaluations["TIS"]

    # SVM wins the POI average over every other method.
    svm_poi_f = svm.average(POI)[2]
    assert svm_poi_f > bayes.average(POI)[2]
    assert svm_poi_f > tin.average(POI)[2]
    assert svm_poi_f > tis.average(POI)[2]
    assert svm_poi_f > 0.85  # paper: 0.87

    # Bayes: recall-heavy, precision-poor.
    svm_p, svm_r, _ = svm.average([s.key for s in TYPE_SPECS])
    bayes_p, bayes_r, _ = bayes.average([s.key for s in TYPE_SPECS])
    assert bayes_r >= svm_r
    assert bayes_p < svm_p

    # Baselines: zero on people and cinema, low recall on POIs.
    for type_key in PEOPLE_AND_CINEMA:
        assert tin.f1_of(type_key) == 0.0
        assert tis.f1_of(type_key) == 0.0
    assert tin.average(POI)[1] < 0.5
    assert tis.average(POI)[1] < 0.5

    # Universities: acronym cells defeat TIN entirely (paper: 0.0).
    assert tin.f1_of("university") == 0.0
