"""Benchmark C1: the Section 6.3 comparison on the Wiki Manual corpus.

Paper shape being verified: our algorithm's entity-annotation F on the
Wikipedia-style corpus is *comparable* to the catalogue-based Limaye
baseline (the paper reports 0.84 vs 0.8382), while -- unlike the baseline --
it also annotates entities missing from the catalogue.
"""

from repro.eval import experiments


def test_bench_comparison(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        experiments.run_comparison, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("comparison_wiki", result.render())

    # Comparable headline F (paper: 0.84 vs 0.8382).
    assert result.ours_f > 0.7
    assert result.limaye_f > 0.7
    assert abs(result.ours_f - result.limaye_f) < 0.15

    # The catalogue covers most, but not all, wiki entities.
    assert 0.6 < result.catalogue_coverage < 1.0

    # The qualitative difference: Limaye's recall is capped by coverage;
    # ours is not.
    limaye_recall = sum(
        s.recall for s in result.limaye_eval.per_type.values()
    ) / len(result.limaye_eval.per_type)
    assert limaye_recall <= result.catalogue_coverage + 0.1
