"""Benchmarks F6 / F7: regenerate the algorithmic figures.

* Figure 6 -- the DBpedia category network excerpt under "Museums" and the
  name-contains-type pruning heuristic that drops "Curators";
* Figure 7 -- the toponym-disambiguation voting graph, on the paper's own
  example cells (Pennsylvania Ave / Washington, Wofford Ln / College Park,
  Clarksville St / Paris).
"""

from repro.eval import experiments


def test_bench_figure6(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        experiments.run_figure6, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("figure6", result.render())

    # The walk finds subcategories; the heuristic drops the noisy one.
    assert len(result.descendants) >= 5
    assert "Curators" in result.dropped
    assert all("museum" in c.lower() for c in result.kept if c != result.root)
    assert result.n_positive_entities > 100  # paper-scale KB pool


def test_bench_figure7(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        experiments.run_figure7, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("figure7", result.render())

    # The paper's resolution, cell by cell.
    expected = {
        (12, 1): "Pennsylvania Avenue, Washington, District of Columbia, USA",
        (12, 2): "Washington, District of Columbia, USA",
        (13, 1): "Wofford Lane, College Park, Maryland, USA",
        (13, 2): "College Park, Maryland, USA",
        (20, 1): "Clarksville Street, Paris, Texas, USA",
        (20, 2): "Paris, Texas, USA",
    }
    assert result.chosen == expected

    # Winning interpretations dominate their cells' score distributions.
    for cell, scores in result.scores.items():
        winner = result.chosen[cell]
        assert scores[winner] == max(scores.values())
        assert scores[winner] > 0.5
