"""Benchmark X1: the introduction's 22 % catalogue-coverage claim.

"We verified that only 22% of the entities in our dataset of tables are
actually represented in either Yago, DBpedia or Freebase" -- the synthetic
world plants the same overlap rate, and the measurement must recover it.
"""

from repro.eval import experiments


def test_bench_coverage(benchmark, full_context, save_artifact):
    result = benchmark.pedantic(
        experiments.run_coverage, args=(full_context,), rounds=1, iterations=1
    )
    save_artifact("coverage", result.render())

    # Overall coverage near the paper's 22 %.
    assert 0.15 < result.overall < 0.30

    # Universities sit at zero: tables use acronyms, catalogues full names.
    assert result.per_type["university"] < 0.05

    # No type is anywhere near fully covered -- the motivation for
    # discovering entities beyond the catalogue.
    assert all(value < 0.6 for value in result.per_type.values())
